package experiments

import (
	"strings"
	"testing"
)

func TestTable1Renders(t *testing.T) {
	s := NewSuite()
	out := s.Table1()
	for _, want := range []string{"IBM Ultrastar 36Z15", "15000", "13.5 W", "10.9 sec", "64 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	tb, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, b := range s.Benchmarks {
		for _, col := range []string{"Requests", "EnergyJ", "ExecMS"} {
			got, _ := tb.Value(b.Name, col)
			want, _ := tb.Value(b.Name, "paper:"+col)
			if want == 0 || got/want < 0.88 || got/want > 1.12 {
				t.Errorf("%s %s = %.0f, paper %.0f", b.Name, col, got, want)
			}
		}
	}
}

func TestFigures34Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	fig3, fig4, err := s.Figures34()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", fig3, fig4)

	get := func(tb interface {
		Value(string, string) (float64, bool)
	}, row, col string) float64 {
		v, ok := tb.Value(row, col)
		if !ok {
			t.Fatalf("missing %s/%s", row, col)
		}
		return v
	}

	// Figure 3 expectations (paper: TPM/ITPM no savings; DRPM ~0.74;
	// CMDRPM ~0.54; IDRPM ~0.49 on average).
	avg := "average"
	if v := get(fig3, avg, "TPM"); v < 0.98 || v > 1.02 {
		t.Errorf("avg TPM energy = %.3f, want ~1", v)
	}
	if v := get(fig3, avg, "ITPM"); v < 0.97 || v > 1.01 {
		t.Errorf("avg ITPM energy = %.3f, want ~1", v)
	}
	drpm := get(fig3, avg, "DRPM")
	cmdrpm := get(fig3, avg, "CMDRPM")
	idrpm := get(fig3, avg, "IDRPM")
	if !(idrpm < cmdrpm && cmdrpm < drpm && drpm < 0.9) {
		t.Errorf("energy ordering: drpm=%.3f cmdrpm=%.3f idrpm=%.3f", drpm, cmdrpm, idrpm)
	}
	if idrpm < 0.40 || idrpm > 0.60 {
		t.Errorf("avg IDRPM = %.3f, paper ~0.49", idrpm)
	}
	if cmdrpm-idrpm > 0.10 {
		t.Errorf("CMDRPM %.3f too far from IDRPM %.3f", cmdrpm, idrpm)
	}

	// Figure 4 expectations (paper: DRPM +15.9%; others ~1.0).
	if v := get(fig4, avg, "DRPM"); v < 1.05 || v > 1.35 {
		t.Errorf("avg DRPM time = %.3f, paper ~1.16", v)
	}
	if v := get(fig4, avg, "CMDRPM"); v > 1.05 {
		t.Errorf("avg CMDRPM time = %.3f, want ~1", v)
	}
	for _, sc := range []string{"TPM", "ITPM", "IDRPM"} {
		if v := get(fig4, avg, sc); v < 0.999 || v > 1.01 {
			t.Errorf("avg %s time = %.3f, want 1", sc, v)
		}
	}
}

func TestTable3InBand(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	tb, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, b := range s.Benchmarks {
		v, _ := tb.Value(b.Name, "mispredicted%")
		if v < 1 || v > 40 {
			t.Errorf("%s misprediction %.2f%% out of band", b.Name, v)
		}
	}
}

func TestFigures56Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	fig5, fig6, err := s.Figures56(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", fig5, fig6)
	// CMDRPM delivers substantial savings at every stripe size and
	// tracks the oracle throughout (the paper's "consistent across a
	// wide range of stripe sizes").
	for _, r := range fig5.Rows {
		cm := r.Values[fig5.Col("CMDRPM")]
		id := r.Values[fig5.Col("IDRPM")]
		if cm > 0.75 {
			t.Errorf("CMDRPM saves too little at %s: %.3f", r.Label, cm)
		}
		if cm-id > 0.12 {
			t.Errorf("CMDRPM %.3f far from IDRPM %.3f at %s", cm, id, r.Label)
		}
	}
	// CMDRPM never slows execution appreciably.
	for _, r := range fig6.Rows {
		if v := r.Values[fig6.Col("CMDRPM")]; v > 1.06 {
			t.Errorf("CMDRPM time %.3f at %s", v, r.Label)
		}
	}
	// DRPM's time penalty worsens as the stripe size grows (the
	// paper's observation).
	first := fig6.Rows[0].Values[fig6.Col("DRPM")]
	last := fig6.Rows[len(fig6.Rows)-1].Values[fig6.Col("DRPM")]
	if last <= first {
		t.Errorf("DRPM penalty did not grow with stripe size: %.3f -> %.3f", first, last)
	}
}

func TestFigures78Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	fig7, fig8, err := s.Figures78(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", fig7, fig8)
	// CMDRPM savings grow with the number of disks and track IDRPM.
	rows := fig7.Rows
	firstSave := 1 - rows[0].Values[fig7.Col("CMDRPM")]
	lastSave := 1 - rows[len(rows)-1].Values[fig7.Col("CMDRPM")]
	if lastSave <= firstSave {
		t.Errorf("CMDRPM savings did not grow with disks: %.3f -> %.3f", firstSave, lastSave)
	}
	for _, r := range rows {
		cm := r.Values[fig7.Col("CMDRPM")]
		id := r.Values[fig7.Col("IDRPM")]
		if cm-id > 0.12 {
			t.Errorf("%s: CMDRPM %.3f far from IDRPM %.3f", r.Label, cm, id)
		}
	}
	// Execution time stays flat for CMDRPM across factors.
	for _, r := range fig8.Rows {
		if v := r.Values[fig8.Col("CMDRPM")]; v > 1.06 {
			t.Errorf("CMDRPM time %.3f at %s", v, r.Label)
		}
	}
}

func TestFigure13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	tb, err := s.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	get := func(row, col string) float64 {
		v, ok := tb.Value(row, col)
		if !ok {
			t.Fatalf("missing %s/%s", row, col)
		}
		return v
	}
	// galgel gains nothing from any transformation.
	for _, col := range []string{"LF/CMDRPM", "TL/CMDRPM", "LF+DL/CMDRPM", "TL+DL/CMDRPM"} {
		if d := get("galgel", col) - get("galgel", "orig/CMDRPM"); d < -0.02 || d > 0.02 {
			t.Errorf("galgel %s differs from orig by %.3f", col, d)
		}
	}
	// Layout-oblivious LF and TL alone bring no real benefit.
	for _, b := range s.Benchmarks {
		for _, col := range []string{"LF/CMDRPM", "TL/CMDRPM"} {
			if d := get(b.Name, "orig/CMDRPM") - get(b.Name, col); d > 0.06 {
				t.Errorf("%s: %s improved by %.3f without layout awareness", b.Name, col, d)
			}
		}
	}
	// LF+DL improves the fissionable benchmarks.
	for _, name := range []string{"swim", "mgrid", "applu", "mesa"} {
		if d := get(name, "orig/CMDRPM") - get(name, "LF+DL/CMDRPM"); d < 0.02 {
			t.Errorf("%s: LF+DL gains only %.3f", name, d)
		}
	}
	// TL+DL improves the transposed benchmarks.
	for _, name := range []string{"wupwise", "applu", "mesa"} {
		if d := get(name, "orig/CMDRPM") - get(name, "TL+DL/CMDRPM"); d < 0.01 {
			t.Errorf("%s: TL+DL gains only %.3f", name, d)
		}
	}
	// The transformations make TPM viable: CMTPM saves nothing on the
	// original codes but saves real energy under LF+DL on the
	// fissionable benchmarks (the paper's headline Fig. 13 finding).
	for _, name := range []string{"swim", "mgrid", "applu", "mesa"} {
		orig := get(name, "orig/CMTPM")
		lfdl := get(name, "LF+DL/CMTPM")
		if orig < 0.97 {
			t.Errorf("%s: CMTPM saved %.3f on original code", name, 1-orig)
		}
		if lfdl > orig-0.05 {
			t.Errorf("%s: LF+DL did not make CMTPM viable (%.3f vs %.3f)", name, lfdl, orig)
		}
	}
}

func TestVersionApplicability(t *testing.T) {
	s := NewSuite()
	tb, err := s.VersionApplicability()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	expect := map[string]map[string]float64{
		"wupwise": {"LF": 0, "LF+DL": 0, "TL+DL": 1},
		"swim":    {"LF": 1, "LF+DL": 1, "TL+DL": 0},
		"mgrid":   {"LF": 1, "LF+DL": 1, "TL+DL": 0},
		"applu":   {"LF": 1, "LF+DL": 1, "TL+DL": 1},
		"mesa":    {"LF": 1, "LF+DL": 1, "TL+DL": 1},
		"galgel":  {"LF": 0, "LF+DL": 0, "TL+DL": 0},
	}
	for name, cols := range expect {
		for col, want := range cols {
			if got, _ := tb.Value(name, col); got != want {
				t.Errorf("%s/%s applied=%v, want %v", name, col, got, want)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	pre, err := s.AblationPreactivation()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", pre)
	// Without pre-activation CMDRPM pays a time penalty.
	onT, _ := pre.Value("average", "CMDRPM-T")
	offT, _ := pre.Value("average", "noPre-T")
	if offT <= onT {
		t.Errorf("no-preactivation not slower: %.3f vs %.3f", offT, onT)
	}

	noise, err := s.AblationNoise("mesa", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", noise)
	// Zero bias leaves only the (small) zero-mean jitter effect.
	if v := noise.Rows[0].Values[0]; v > 2 {
		t.Errorf("zero-bias misprediction = %.2f", v)
	}
	if a, b := noise.Rows[1].Values[0], noise.Rows[len(noise.Rows)-1].Values[0]; b <= a {
		t.Errorf("misprediction not increasing with bias: %.2f -> %.2f", a, b)
	}

	cacheTb, err := s.AblationCache()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", cacheTb)
	for _, r := range cacheTb.Rows {
		if r.Values[1] <= r.Values[0] {
			t.Errorf("%s: cacheless requests not larger", r.Label)
		}
	}

	cl, err := s.AblationClustering()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", cl)
	with, _ := cl.Value("average", "LF+DL")
	without, _ := cl.Value("average", "LF+DL-nocluster")
	if with >= without+0.01 {
		t.Errorf("clustering hurt: %.3f vs %.3f", with, without)
	}
}

func TestUnknownSensitivityBenchmark(t *testing.T) {
	s := NewSuite()
	s.Benchmarks = s.Benchmarks[:1] // wupwise only: no swim
	if _, _, err := s.Figures56(nil); err == nil {
		t.Error("missing swim accepted")
	}
	if _, _, err := s.Figures78(nil); err == nil {
		t.Error("missing swim accepted")
	}
	if _, err := s.AblationNoise("nope", nil); err == nil {
		t.Error("unknown ablation benchmark accepted")
	}
}

func TestExtensionInterchange(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	tb, err := s.ExtensionInterchange()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	// Interchange fixes the transposed benchmarks nearly as well as
	// TL+DL (it removes the cache-thrashing traversal without any
	// layout change).
	for _, name := range []string{"wupwise", "applu"} {
		orig, _ := tb.Value(name, "orig")
		ic, _ := tb.Value(name, "IC")
		tldl, _ := tb.Value(name, "TL+DL")
		if ic >= orig-0.02 {
			t.Errorf("%s: interchange gained only %.3f", name, orig-ic)
		}
		if ic > tldl+0.05 {
			t.Errorf("%s: interchange (%.3f) far behind TL+DL (%.3f)", name, ic, tldl)
		}
	}
	// Conforming benchmarks are untouched.
	for _, name := range []string{"swim", "mgrid", "galgel"} {
		orig, _ := tb.Value(name, "orig")
		ic, _ := tb.Value(name, "IC")
		if orig != ic {
			t.Errorf("%s: interchange changed a conforming program", name)
		}
	}
	// Request counts drop on the fixed benchmarks.
	for _, name := range []string{"wupwise", "applu", "mesa"} {
		icr, _ := tb.Value(name, "IC-requests")
		origr, _ := tb.Value(name, "orig-requests")
		if icr >= origr {
			t.Errorf("%s: interchange did not reduce requests", name)
		}
	}
}

func TestAblationOpenLoopAndSeek(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	ol, err := s.AblationOpenLoop()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", ol)
	// Open-loop replay hides the reactive scheme's time penalty —
	// the reason the reproduction uses closed-loop execution.
	closedT, _ := ol.Value("average", "DRPM-T")
	openT, _ := ol.Value("average", "openDRPM-T")
	if closedT < 1.05 {
		t.Errorf("closed-loop DRPM penalty missing: %.3f", closedT)
	}
	if openT > 1.02 {
		t.Errorf("open-loop DRPM shows a penalty: %.3f", openT)
	}

	seek, err := s.AblationSeekModel()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", seek)
	// The workloads are mostly sequential: distance-dependent seeks
	// are cheaper than the datasheet average.
	for _, r := range seek.Rows {
		if r.Values[1] >= r.Values[0] {
			t.Errorf("%s: distance seek energy not lower", r.Label)
		}
		if r.Values[3] >= r.Values[2] {
			t.Errorf("%s: distance seek time not lower", r.Label)
		}
	}
}

func TestEnergyBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	s.Benchmarks = s.Benchmarks[5:] // galgel only: keep it quick
	tb, err := s.EnergyBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	r := tb.Rows[0].Values
	baseTotal := r[0] + r[1]
	cmTotal := r[2] + r[3] + r[4] + r[5]
	if cmTotal >= baseTotal {
		t.Errorf("breakdown shows no savings: %.0f vs %.0f", cmTotal, baseTotal)
	}
	// Active energy is identical (same requests at full speed).
	if r[0] != r[2] {
		t.Errorf("active energies differ: %g vs %g", r[0], r[2])
	}
	// The compiler-managed savings come from shrinking idle energy.
	if r[3] >= r[1]/2 {
		t.Errorf("idle energy not collapsed: %g vs %g", r[3], r[1])
	}
}

func TestExtensionMultiprogram(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	tb, err := s.ExtensionMultiprogram()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Savings shrink as programs share the subsystem, and open-loop
	// replay shows no reactive time penalty.
	first := tb.Rows[0].Values[tb.Col("DRPM-E")]
	last := tb.Rows[len(tb.Rows)-1].Values[tb.Col("DRPM-E")]
	if last <= first {
		t.Errorf("DRPM savings did not shrink under multiprogramming: %.3f -> %.3f", first, last)
	}
	for _, r := range tb.Rows {
		if v := r.Values[tb.Col("DRPM-T")]; v > 1.001 {
			t.Errorf("%s: open-loop DRPM time %.3f", r.Label, v)
		}
	}
}
