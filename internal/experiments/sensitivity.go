package experiments

import (
	"fmt"

	"sdpm/internal/core"
	"sdpm/internal/stats"
	"sdpm/internal/workloads"
)

// DefaultStripeSizes are the stripe-unit sizes swept by Figures 5/6.
var DefaultStripeSizes = []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}

// DefaultStripeFactors are the disk counts swept by Figures 7/8.
var DefaultStripeFactors = []int{2, 4, 8, 12, 16}

// sensitivitySchemes are the schemes the sensitivity figures track.
var sensitivitySchemes = []core.Scheme{core.DRPM, core.IDRPM, core.CMDRPM}

// sensitivityBench returns the benchmark the paper uses for the
// sensitivity analysis (swim).
func (s *Suite) sensitivityBench() (*workloads.Benchmark, error) {
	for _, b := range s.Benchmarks {
		if b.Name == "swim" {
			return b, nil
		}
	}
	return nil, fmt.Errorf("experiments: sensitivity analysis needs the swim benchmark")
}

// sweep runs swim under one configuration variant per point — one
// worker cell per (point, scheme) pair, every scheme at a point
// sharing the point's prepared instance through the memo — and
// returns raw energy and execution-time tables (rows: points; cols:
// Base + sensitivitySchemes).
func (s *Suite) sweep(labels []string, vary func(cfg *core.Config, point int), wrap func(point int, sc core.Scheme, err error) error) (*stats.Table, *stats.Table, error) {
	b, err := s.sensitivityBench()
	if err != nil {
		return nil, nil, err
	}
	schemes := append([]core.Scheme{core.Base}, sensitivitySchemes...)
	cols := make([]string, 0, len(schemes))
	for _, sc := range schemes {
		cols = append(cols, string(sc))
	}
	energy := &stats.Table{Columns: cols, Precision: 1}
	times := &stats.Table{Columns: cols, Precision: 1}
	ns := len(schemes)
	cells := make([][]float64, len(labels)*ns)
	err = s.pool().Map(len(cells), func(i int) error {
		point, sc := i/ns, schemes[i%ns]
		cfg := s.configFor(b)
		vary(&cfg, point)
		vals, err := s.cell(s.cellKey("sweep", &cfg, b.Name, labels[point], string(sc)), 2, func() ([]float64, error) {
			in, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			res, err := in.Run(sc)
			if err != nil {
				return nil, wrap(point, sc, err)
			}
			return []float64{res.EnergyJ, res.ExecMS}, nil
		})
		cells[i] = vals
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	for p, label := range labels {
		evals := make([]float64, 0, ns)
		tvals := make([]float64, 0, ns)
		for si := 0; si < ns; si++ {
			c := cells[p*ns+si]
			evals = append(evals, c[0])
			tvals = append(tvals, c[1])
		}
		energy.Add(label, evals...)
		times.Add(label, tvals...)
	}
	return energy, times, nil
}

// stripeSweep runs swim at each stripe size and returns raw energy
// and execution-time tables (rows: sizes; cols: Base + schemes).
func (s *Suite) stripeSweep(sizes []int64) (*stats.Table, *stats.Table, error) {
	labels := make([]string, len(sizes))
	for i, size := range sizes {
		labels[i] = fmt.Sprintf("%dKB", size/1024)
	}
	return s.sweep(labels,
		func(cfg *core.Config, p int) { cfg.UnitBytes = sizes[p] },
		func(p int, sc core.Scheme, err error) error {
			return fmt.Errorf("stripe %dKB/%s: %w", sizes[p]/1024, sc, err)
		})
}

// Figures56 computes Figures 5 and 6: swim's normalized energy and
// execution time across stripe sizes (normalized to the base scheme
// at each size).
func (s *Suite) Figures56(sizes []int64) (*stats.Table, *stats.Table, error) {
	if len(sizes) == 0 {
		sizes = DefaultStripeSizes
	}
	energy, times, err := s.stripeSweep(sizes)
	if err != nil {
		return nil, nil, err
	}
	ne, err := energy.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	nt, err := times.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	ne.Precision = 3
	ne.Title = "Figure 5: Energy consumption with different stripe sizes (swim)"
	nt.Precision = 3
	nt.Title = "Figure 6: Execution time with different stripe sizes (swim)"
	return ne, nt, nil
}

// factorSweep runs swim at each stripe factor (= subsystem size).
func (s *Suite) factorSweep(factors []int) (*stats.Table, *stats.Table, error) {
	labels := make([]string, len(factors))
	for i, f := range factors {
		labels[i] = fmt.Sprintf("%d disks", f)
	}
	return s.sweep(labels,
		func(cfg *core.Config, p int) { cfg.NumDisks = factors[p] },
		func(p int, sc core.Scheme, err error) error {
			return fmt.Errorf("factor %d/%s: %w", factors[p], sc, err)
		})
}

// Figures78 computes Figures 7 and 8: swim's normalized energy and
// execution time across stripe factors.
func (s *Suite) Figures78(factors []int) (*stats.Table, *stats.Table, error) {
	if len(factors) == 0 {
		factors = DefaultStripeFactors
	}
	energy, times, err := s.factorSweep(factors)
	if err != nil {
		return nil, nil, err
	}
	ne, err := energy.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	nt, err := times.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	ne.Precision = 3
	ne.Title = "Figure 7: Energy consumption with different stripe factors (swim)"
	nt.Precision = 3
	nt.Title = "Figure 8: Execution time with different stripe factors (swim)"
	return ne, nt, nil
}
