package client

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Metrics is the client's own observability: every counter that a
// resilience decision touches. All fields are updated atomically; a
// Snapshot is safe to take at any time. With a fixed seed and a fixed
// request sequence the whole snapshot — transitions included — is
// byte-identical run after run, which is what the soak harness
// asserts.
type Metrics struct {
	requests   atomic.Int64 // logical requests issued through the client
	succeeded  atomic.Int64
	failed     atomic.Int64 // logical requests that exhausted every remedy
	attempts   atomic.Int64 // network attempts (including hedges)
	retries    atomic.Int64 // attempts beyond each request's first
	fastFails  atomic.Int64 // requests rejected instantly by the open breaker
	hedges     atomic.Int64 // hedge attempts launched
	hedgesWon  atomic.Int64 // hedge finished first with a usable response
	hedgesLost atomic.Int64 // primary finished first after a hedge launched
	replays    atomic.Int64 // responses served from the server's idempotency cache
	digestBad  atomic.Int64 // responses discarded for a digest mismatch
	retryAfter atomic.Int64 // backoffs stretched to honor a Retry-After hint
	netErrors  atomic.Int64 // transport-level attempt failures
	httpRetry  atomic.Int64 // retryable HTTP statuses (429/500/502/503/504)
}

// MetricsSnapshot is a point-in-time copy of the counters plus the
// breaker's state and transition log.
type MetricsSnapshot struct {
	Requests           int64    `json:"requests"`
	Succeeded          int64    `json:"succeeded"`
	Failed             int64    `json:"failed"`
	Attempts           int64    `json:"attempts"`
	Retries            int64    `json:"retries"`
	BreakerFastFails   int64    `json:"breaker_fast_fails"`
	BreakerOpens       int64    `json:"breaker_opens"`
	BreakerHalfOpens   int64    `json:"breaker_half_opens"`
	BreakerCloses      int64    `json:"breaker_closes"`
	BreakerState       string   `json:"breaker_state"`
	BreakerTransitions []string `json:"breaker_transitions,omitempty"`
	Hedges             int64    `json:"hedges"`
	HedgesWon          int64    `json:"hedges_won"`
	HedgesLost         int64    `json:"hedges_lost"`
	Replays            int64    `json:"replays"`
	DigestMismatches   int64    `json:"digest_mismatches"`
	RetryAfterHonored  int64    `json:"retry_after_honored"`
	NetErrors          int64    `json:"net_errors"`
	HTTPRetries        int64    `json:"http_retries"`
}

// String renders the snapshot as deterministic key=value lines in
// alphabetical key order — the format dpmctl -metrics prints and the
// soak harness diffs across runs.
func (s MetricsSnapshot) String() string {
	kv := map[string]string{
		"attempts":            fmt.Sprint(s.Attempts),
		"breaker_closes":      fmt.Sprint(s.BreakerCloses),
		"breaker_fast_fails":  fmt.Sprint(s.BreakerFastFails),
		"breaker_half_opens":  fmt.Sprint(s.BreakerHalfOpens),
		"breaker_opens":       fmt.Sprint(s.BreakerOpens),
		"breaker_state":       s.BreakerState,
		"breaker_transitions": transitionString(s.BreakerTransitions),
		"digest_mismatches":   fmt.Sprint(s.DigestMismatches),
		"failed":              fmt.Sprint(s.Failed),
		"hedges":              fmt.Sprint(s.Hedges),
		"hedges_lost":         fmt.Sprint(s.HedgesLost),
		"hedges_won":          fmt.Sprint(s.HedgesWon),
		"http_retries":        fmt.Sprint(s.HTTPRetries),
		"net_errors":          fmt.Sprint(s.NetErrors),
		"replays":             fmt.Sprint(s.Replays),
		"requests":            fmt.Sprint(s.Requests),
		"retries":             fmt.Sprint(s.Retries),
		"retry_after_honored": fmt.Sprint(s.RetryAfterHonored),
		"succeeded":           fmt.Sprint(s.Succeeded),
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, kv[k])
	}
	return b.String()
}
