package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdpm/internal/netx"
)

// Acceptance tests: the resilient client against the netx chaos proxy.
// Connection-indexed fault scripts line up with client attempts
// because the client opens a fresh connection per attempt (keep-alive
// off) and each test drives requests sequentially.

// chaosStack boots an upstream serving body (with a correct
// X-Sdpm-Digest header) behind a netx proxy configured by cfg.
func chaosStack(t *testing.T, body string, seed int64, cfg netx.Config) string {
	t.Helper()
	sum := sha256.Sum256([]byte(body))
	digest := "sha256=" + hex.EncodeToString(sum[:])
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Header().Set("X-Sdpm-Digest", digest)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(up.Close)
	p, err := netx.New(strings.TrimPrefix(up.URL, "http://"), seed, cfg)
	if err != nil {
		t.Fatalf("netx.New: %v", err)
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("netx start: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return "http://" + addr.String()
}

// breakerScript drives a fixed request sequence through a proxy that
// resets connections 2, 3, and 4, and returns the client's metrics.
// With MaxRetries disabled, attempt order equals connection order, so
// the breaker choreography is exact: three resets open it at decision
// 10, two fast-fail-phase calls reach the half-open probe at decision
// 12, and the clean probe closes it at decision 13.
func breakerScript(t *testing.T) MetricsSnapshot {
	t.Helper()
	base := chaosStack(t, "steady", 1, netx.Config{ResetAt: []int{2, 3, 4}})
	c := New(Config{
		BaseURL:    base,
		Seed:       7,
		MaxRetries: -1, // one attempt per request: requests map 1:1 to connections
		Breaker:    BreakerConfig{FailureThreshold: 3, ProbeAfter: 2},
	})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		c.Do(ctx, http.MethodGet, "/", nil, "")
	}
	return c.Metrics()
}

func TestBreakerOpensAndClosesAtSeededPoints(t *testing.T) {
	m := breakerScript(t)
	want := []string{"open@10", "half-open@12", "closed@13"}
	if got := transitionString(m.BreakerTransitions); got != transitionString(want) {
		t.Fatalf("breaker transitions = %q, want %q", got, transitionString(want))
	}
	if m.Requests != 8 || m.Succeeded != 4 || m.Failed != 4 {
		t.Fatalf("request accounting: %+v", m)
	}
	if m.Attempts != 7 || m.NetErrors != 3 || m.BreakerFastFails != 1 {
		t.Fatalf("attempt accounting: %+v", m)
	}
	if m.BreakerOpens != 1 || m.BreakerHalfOpens != 1 || m.BreakerCloses != 1 {
		t.Fatalf("breaker counters: %+v", m)
	}
}

func TestBreakerScriptIsReproducible(t *testing.T) {
	first := breakerScript(t).String()
	second := breakerScript(t).String()
	if first != second {
		t.Fatalf("identical chaos script produced different metrics:\n--- first\n%s--- second\n%s", first, second)
	}
}

func TestRetriesRideThroughScriptedResets(t *testing.T) {
	// Connections 0 and 1 reset; the client's first request retries
	// onto connection 2, which is clean.
	base := chaosStack(t, "eventually", 1, netx.Config{ResetAt: []int{0, 1}})
	c := New(Config{BaseURL: base, Seed: 3, MaxRetries: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "eventually" || res.Attempts != 3 {
		t.Fatalf("body=%q attempts=%d, want the third attempt to land", res.Body, res.Attempts)
	}
	if m := c.Metrics(); m.NetErrors != 2 || m.Retries != 2 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestDigestCatchesWireCorruption(t *testing.T) {
	// Connection 0 has one body byte corrupted in flight; the digest
	// check rejects it and the retry on connection 1 is clean.
	base := chaosStack(t, strings.Repeat("x", 256), 5, netx.Config{CorruptAt: []int{0}})
	c := New(Config{BaseURL: base, Seed: 3, MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (corrupted then clean)", res.Attempts)
	}
	if m := c.Metrics(); m.DigestMismatches != 1 {
		t.Fatalf("digest_mismatches = %d, want 1", m.DigestMismatches)
	}
}

func TestHedgeRescuesBlackholedConnection(t *testing.T) {
	// Connection 0 is blackholed: the primary attempt hangs forever.
	// The hedge launches after 50ms onto connection 1 and wins.
	base := chaosStack(t, "rescued", 1, netx.Config{BlackholeAt: []int{0}})
	c := New(Config{
		BaseURL:        base,
		Seed:           3,
		HedgeDelay:     50 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
	})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "rescued" {
		t.Fatalf("body = %q", res.Body)
	}
	m := c.Metrics()
	if m.Hedges != 1 || m.HedgesWon != 1 {
		t.Fatalf("hedge metrics: %+v", m)
	}
	if m.Requests != 1 || m.Succeeded != 1 || m.Retries != 0 {
		t.Fatalf("request accounting: %+v", m)
	}
}

func TestTruncatedBodyRetried(t *testing.T) {
	base := chaosStack(t, strings.Repeat("y", 4096), 1, netx.Config{TruncateAt: []int{0}, TruncateAfterBytes: 64})
	c := New(Config{BaseURL: base, Seed: 3, MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(res.Body) != 4096 || res.Attempts != 2 {
		t.Fatalf("len=%d attempts=%d", len(res.Body), res.Attempts)
	}
}
