package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"
)

// SimRequest mirrors the POST /v1/sim body.
type SimRequest struct {
	Bench     string `json:"bench"`
	Scheme    string `json:"scheme,omitempty"`
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	Audit     bool   `json:"audit,omitempty"`
}

// SimResponse mirrors the POST /v1/sim success body.
type SimResponse struct {
	Bench    string  `json:"bench"`
	Scheme   string  `json:"scheme"`
	EnergyJ  float64 `json:"energy_j"`
	ExecMS   float64 `json:"exec_ms"`
	WaitMS   float64 `json:"wait_ms"`
	Requests int     `json:"requests"`
	PowerOps int     `json:"power_ops"`
}

// ExperimentRequest mirrors the POST /v1/experiment body.
type ExperimentRequest struct {
	ID        string `json:"id"`
	Format    string `json:"format,omitempty"`
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	Audit     bool   `json:"audit,omitempty"`
	Durable   bool   `json:"durable,omitempty"`
}

// timeoutQuery renders a server-side ?timeout= query (empty for 0).
func timeoutQuery(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return "?timeout=" + url.QueryEscape(d.String())
}

// Sim runs one (benchmark, scheme) simulation. serverTimeout sets the
// per-request server-side deadline (0 = the server's default).
func (c *Client) Sim(ctx context.Context, req SimRequest, serverTimeout time.Duration) (*SimResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	res, err := c.Do(ctx, http.MethodPost, "/v1/sim"+timeoutQuery(serverTimeout), body, "")
	if err != nil {
		return nil, err
	}
	var out SimResponse
	if err := json.Unmarshal(res.Body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding sim response: %w", err)
	}
	return &out, nil
}

// Experiment renders one experiment and returns the full result —
// the body bytes are identical to an offline dpmexp render of the
// same experiment, and Result.Replayed reports whether the server
// served them from its idempotency cache.
func (c *Client) Experiment(ctx context.Context, req ExperimentRequest, serverTimeout time.Duration) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, http.MethodPost, "/v1/experiment"+timeoutQuery(serverTimeout), body, "")
}

// ListExperiments returns the experiment ids the server accepts.
func (c *Client) ListExperiments(ctx context.Context) ([]string, error) {
	return c.getList(ctx, "/v1/experiments")
}

// ListBenchmarks returns the benchmark names the server accepts.
func (c *Client) ListBenchmarks(ctx context.Context) ([]string, error) {
	return c.getList(ctx, "/v1/benchmarks")
}

func (c *Client) getList(ctx context.Context, path string) ([]string, error) {
	res, err := c.Do(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		return nil, err
	}
	var out []string
	if err := json.Unmarshal(res.Body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding %s: %w", path, err)
	}
	return out, nil
}

// Status returns the server's /status JSON snapshot.
func (c *Client) Status(ctx context.Context) (map[string]any, error) {
	res, err := c.Do(ctx, http.MethodGet, "/status", nil, "")
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(res.Body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding status: %w", err)
	}
	return out, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.Do(ctx, http.MethodGet, "/healthz", nil, "")
	return err
}
