package client

import (
	"fmt"
	"strings"
	"sync"

	"sdpm/internal/faults"
)

// BreakerConfig tunes the deterministic circuit breaker. The zero
// value gets the defaults below from complete().
type BreakerConfig struct {
	// FailureThreshold is how many consecutive attempt failures open
	// the breaker (0 = 5; negative disables the breaker entirely).
	FailureThreshold int
	// ProbeAfter is how many fast-fail rejections an open breaker
	// absorbs before going half-open and letting one probe attempt
	// through (0 = 8). Counting rejections instead of wall-clock makes
	// the schedule a pure function of the call sequence — the breaker
	// opens and closes at exactly the same points run after run.
	ProbeAfter int
	// ProbeJitter widens each open period by a seeded extra rejection
	// count in [0, ProbeJitter), drawn per open from the client's seed
	// (0 = none). Deterministic for a fixed seed; spreads probes out
	// across a fleet of clients with distinct seeds.
	ProbeJitter int
	// ProbeSuccesses is how many consecutive probe successes close a
	// half-open breaker (0 = 1).
	ProbeSuccesses int
	// MaxProbeAfter caps the doubling of ProbeAfter across consecutive
	// re-opens (0 = 16x the base ProbeAfter).
	MaxProbeAfter int
}

func (c *BreakerConfig) complete() {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 8
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	if c.MaxProbeAfter <= 0 {
		c.MaxProbeAfter = 16 * c.ProbeAfter
	}
}

// Breaker states.
const (
	breakerClosed = "closed"
	breakerOpen   = "open"
	breakerHalf   = "half-open"
)

const streamProbeJitter = 0x636c69656e740a01

// breaker is a deterministic circuit breaker: closed until
// FailureThreshold consecutive failures, then open (every call is
// rejected instantly) for a seeded number of rejections, then
// half-open (one probe at a time) until ProbeSuccesses consecutive
// probe successes close it again; a failed probe re-opens with a
// doubled (capped) rejection budget. All scheduling is counted in
// calls, not wall time, so a fixed call sequence yields a fixed
// transition sequence.
type breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	// seed drives the per-open probe-schedule jitter.
	seed int64

	state       string
	consecFails int
	rejections  int
	probeBudget int // rejections to absorb before the next probe
	successRun  int
	probing     bool
	openStreak  int64 // consecutive opens since the last full close; drives doubling
	opens       int64
	halfOpens   int64
	closes      int64
	// decisions counts every Allow/Success/Failure call; transition
	// labels carry it so a transition log pinpoints the exact call.
	decisions   int64
	transitions []string
}

func newBreaker(cfg BreakerConfig, seed int64) *breaker {
	cfg.complete()
	return &breaker{cfg: cfg, seed: seed, state: breakerClosed}
}

// disabled reports whether the breaker never opens.
func (b *breaker) disabled() bool { return b.cfg.FailureThreshold < 0 }

// budget derives the rejection budget for the k-th open: the base
// doubles per consecutive re-open (capped), plus a seeded jitter.
func (b *breaker) budget(k int64) int {
	base := b.cfg.ProbeAfter
	for i := int64(1); i < k; i++ {
		base *= 2
		if base >= b.cfg.MaxProbeAfter {
			base = b.cfg.MaxProbeAfter
			break
		}
	}
	if b.cfg.ProbeJitter > 0 {
		base += int(faults.Uniform(b.seed, streamProbeJitter, uint64(k)) * float64(b.cfg.ProbeJitter))
	}
	return base
}

func (b *breaker) transition(state string) {
	b.state = state
	b.transitions = append(b.transitions, fmt.Sprintf("%s@%d", state, b.decisions))
}

// allow reports whether an attempt may proceed. A false return is a
// fast-fail rejection (no network activity happens).
func (b *breaker) allow() bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decisions++
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		b.rejections++
		if b.rejections >= b.probeBudget {
			b.halfOpens++
			b.transition(breakerHalf)
			b.probing = true
			return true // this call is the probe
		}
		return false
	default: // half-open
		if b.probing {
			return false // one probe in flight at a time
		}
		b.probing = true
		return true
	}
}

// success records a definitive attempt success.
func (b *breaker) success() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decisions++
	b.consecFails = 0
	if b.state == breakerHalf {
		b.probing = false
		b.successRun++
		if b.successRun >= b.cfg.ProbeSuccesses {
			b.closes++
			b.openStreak = 0 // a full recovery resets the budget doubling
			b.transition(breakerClosed)
		}
	}
}

// abort resolves an attempt that proved nothing about the server — a
// request-build error or a caller cancellation. It releases a pending
// half-open probe without recording a success or failure; leaving the
// probe pending would fast-fail every future request forever.
func (b *breaker) abort() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decisions++
	if b.state == breakerHalf {
		b.probing = false
	}
}

// failure records a definitive attempt failure.
func (b *breaker) failure() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decisions++
	switch b.state {
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.open()
		}
	case breakerHalf:
		// The probe failed: back to open with a doubled budget.
		b.probing = false
		b.successRun = 0
		b.open()
	}
}

func (b *breaker) open() {
	b.opens++
	b.openStreak++
	b.rejections = 0
	b.successRun = 0
	b.probeBudget = b.budget(b.openStreak)
	b.transition(breakerOpen)
}

// snapshot returns (state, opens, halfOpens, closes, transitions).
func (b *breaker) snapshot() (string, int64, int64, int64, []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	tr := append([]string(nil), b.transitions...)
	return b.state, b.opens, b.halfOpens, b.closes, tr
}

// transitionString renders the transition log as a ';'-joined line
// ("open@12;half-open@21;closed@22"), empty when nothing happened.
func transitionString(tr []string) string { return strings.Join(tr, ";") }
