package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClient builds a client against base with fast defaults and a
// recording no-op sleep so retry tests run instantly.
func newTestClient(base string, cfg Config) (*Client, *[]time.Duration) {
	cfg.BaseURL = base
	c := New(cfg)
	var slept []time.Duration
	var mu sync.Mutex
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return c, &slept
}

func writeEnvelope(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"kind":%q,"message":%q}}`, kind, msg)
}

func TestRetryOn500ThenSuccess(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			writeEnvelope(w, 500, "internal", "boom")
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 1})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "ok" || res.Attempts != 3 {
		t.Fatalf("body=%q attempts=%d", res.Body, res.Attempts)
	}
	m := c.Metrics()
	if m.Retries != 2 || m.HTTPRetries != 2 || m.Succeeded != 1 || m.Failed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestTerminal400NotRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeEnvelope(w, 400, "validation", "bad bench")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 1})
	_, err := c.Do(context.Background(), http.MethodPost, "/v1/sim", []byte(`{}`), "")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v (%T), want *APIError", err, err)
	}
	if apiErr.Status != 400 || apiErr.Kind != "validation" {
		t.Fatalf("apiErr = %+v", apiErr)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times for a terminal 400, want 1", hits.Load())
	}
	if m := c.Metrics(); m.Failed != 1 || m.Retries != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestRetryAfterStretchesBackoff(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			writeEnvelope(w, 429, "overload", "shed")
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c, slept := newTestClient(srv.URL, Config{Seed: 1, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	if _, err := c.Do(context.Background(), http.MethodGet, "/", nil, ""); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] < 2*time.Second {
		t.Fatalf("slept %v, want one sleep stretched to >= 2s by Retry-After", *slept)
	}
	m := c.Metrics()
	if m.RetryAfterHonored != 1 {
		t.Fatalf("retry_after_honored = %d, want 1", m.RetryAfterHonored)
	}
	// 429 must not feed the breaker's failure streak.
	if m.BreakerOpens != 0 {
		t.Fatalf("a 429 opened the breaker")
	}
}

func TestBackoffCapAndDeterminism(t *testing.T) {
	a := New(Config{Seed: 9, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	b := New(Config{Seed: 9, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	for try := 1; try <= 12; try++ {
		da, db := a.backoff(try, 0), b.backoff(try, 0)
		if da != db {
			t.Fatalf("try %d: same seed, different backoff %v vs %v", try, da, db)
		}
		if da < 0 || da > 80*time.Millisecond {
			t.Fatalf("try %d: backoff %v outside [0, cap]", try, da)
		}
	}
}

func TestIdempotencyKeyDeterministicAndStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		if hits.Add(1) == 1 {
			writeEnvelope(w, 503, "unavailable", "warming up")
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 42})
	if _, err := c.Do(context.Background(), http.MethodPost, "/", []byte(`{}`), ""); err != nil {
		t.Fatalf("Do: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("keys across retry = %v, want two identical non-empty keys", keys)
	}
	// Same seed, same request index: same key. Different seed: different.
	same := New(Config{Seed: 42})
	other := New(Config{Seed: 43})
	if same.idemKey(0) != keys[0] {
		t.Fatalf("idemKey(0) = %q, want %q", same.idemKey(0), keys[0])
	}
	if other.idemKey(0) == keys[0] {
		t.Fatalf("different seeds produced the same idempotency key")
	}
}

func TestDigestMismatchRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := "payload"
		sum := sha256.Sum256([]byte(body))
		digest := "sha256=" + hex.EncodeToString(sum[:])
		if hits.Add(1) == 1 {
			// Lie about the digest: simulates corruption in flight.
			digest = "sha256=" + hex.EncodeToString(make([]byte, 32))
		}
		w.Header().Set("X-Sdpm-Digest", digest)
		fmt.Fprint(w, body)
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 1})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "payload" || res.Attempts != 2 {
		t.Fatalf("body=%q attempts=%d", res.Body, res.Attempts)
	}
	if m := c.Metrics(); m.DigestMismatches != 1 {
		t.Fatalf("digest_mismatches = %d, want 1", m.DigestMismatches)
	}
}

func TestDigestCheckDisabled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Sdpm-Digest", "sha256="+hex.EncodeToString(make([]byte, 32)))
		fmt.Fprint(w, "payload")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 1, DisableDigestCheck: true})
	if _, err := c.Do(context.Background(), http.MethodGet, "/", nil, ""); err != nil {
		t.Fatalf("Do with digest check disabled: %v", err)
	}
}

func TestReplayedHeaderCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Idempotency-Replayed", "true")
		fmt.Fprint(w, "cached")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 1})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !res.Replayed || c.Metrics().Replays != 1 {
		t.Fatalf("replayed=%v replays=%d", res.Replayed, c.Metrics().Replays)
	}
}

func TestBreakerFastFailAfterExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, 500, "internal", "down hard")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{
		Seed:       1,
		MaxRetries: 1,
		Breaker:    BreakerConfig{FailureThreshold: 2, ProbeAfter: 3},
	})
	// Request 1: two attempts, two breaker failures -> open.
	_, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	var exh *ExhaustedError
	if !errors.As(err, &exh) || exh.Attempts != 2 {
		t.Fatalf("first request err = %v", err)
	}
	// Request 2: rejected instantly, no network attempt.
	_, err = c.Do(context.Background(), http.MethodGet, "/", nil, "")
	var open *BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("second request err = %v (%T), want *BreakerOpenError", err, err)
	}
	m := c.Metrics()
	if m.BreakerFastFails != 1 || m.Attempts != 2 || m.BreakerOpens != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

// A half-open probe answered with a terminal 4xx must resolve the
// probe: the server is alive, so the breaker closes instead of
// rejecting every future request forever.
func TestHalfOpenProbeResolvedByTerminal4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			writeEnvelope(w, 500, "internal", "down")
		case 2:
			writeEnvelope(w, 404, "not_found", "no such route")
		default:
			fmt.Fprint(w, "ok")
		}
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{
		Seed:       1,
		MaxRetries: -1,
		Breaker:    BreakerConfig{FailureThreshold: 1, ProbeAfter: 1},
	})
	ctx := context.Background()
	// Request 1: 500 -> the breaker opens.
	if _, err := c.Do(ctx, http.MethodGet, "/", nil, ""); err == nil {
		t.Fatal("want a failure from the 500")
	}
	// Request 2 is the half-open probe; the 404 is terminal but proves
	// the server alive.
	_, err := c.Do(ctx, http.MethodGet, "/", nil, "")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("probe err = %v, want the 404 *APIError", err)
	}
	// Request 3: must go through — a wedged probe would fast-fail here
	// and on every request after.
	res, err := c.Do(ctx, http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("request after 4xx-resolved probe: %v", err)
	}
	if string(res.Body) != "ok" {
		t.Fatalf("body = %q, want ok", res.Body)
	}
	m := c.Metrics()
	if m.BreakerState != "closed" || m.BreakerFastFails != 0 {
		t.Fatalf("breaker wedged after a 4xx probe: %+v", m)
	}
}

func TestTransportErrorRetriedAndCounted(t *testing.T) {
	// A listener that closed: connection refused on every attempt.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := srv.URL
	srv.Close()

	c, _ := newTestClient(dead, Config{Seed: 1, MaxRetries: 2})
	_, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	var exh *ExhaustedError
	if !errors.As(err, &exh) || exh.Attempts != 3 {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if m := c.Metrics(); m.NetErrors != 3 || m.Retries != 2 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestCanceledContextStopsRetrying(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, 503, "unavailable", "nope")
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c, _ := newTestClient(srv.URL, Config{Seed: 1, MaxRetries: 10})
	calls := 0
	c.sleep = func(ctx context.Context, d time.Duration) error {
		calls++
		cancel() // the caller gives up during the first backoff
		return context.Canceled
	}
	_, err := c.Do(ctx, http.MethodGet, "/", nil, "")
	if err == nil {
		t.Fatalf("expected an error after cancellation")
	}
	if calls != 1 {
		t.Fatalf("kept retrying after the context died: %d sleeps", calls)
	}
}

func TestHedgeWinsAgainstSlowPrimary(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// The primary parks until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, "hedged")
	}))
	defer srv.Close()
	defer close(release)

	c, _ := newTestClient(srv.URL, Config{Seed: 1, HedgeDelay: 30 * time.Millisecond})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "hedged" {
		t.Fatalf("body = %q", res.Body)
	}
	m := c.Metrics()
	if m.Hedges != 1 || m.HedgesWon != 1 || m.HedgesLost != 0 {
		t.Fatalf("hedge metrics: %+v", m)
	}
	if m.Attempts != 2 || m.Retries != 0 {
		t.Fatalf("a hedge is not a retry: %+v", m)
	}
	// The canceled loser is a hedging artifact, not a network fault.
	if m.NetErrors != 0 {
		t.Fatalf("net_errors = %d after a hedge win, want 0", m.NetErrors)
	}
}

func TestHedgeLosesAgainstFastPrimary(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "primary")
	}))
	defer srv.Close()

	c, _ := newTestClient(srv.URL, Config{Seed: 1, HedgeDelay: 10 * time.Second})
	res, err := c.Do(context.Background(), http.MethodGet, "/", nil, "")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(res.Body) != "primary" {
		t.Fatalf("body = %q", res.Body)
	}
	if m := c.Metrics(); m.Hedges != 0 || m.HedgesWon != 0 {
		t.Fatalf("hedge launched despite a fast primary: %+v", m)
	}
}

func TestMetricsSnapshotStringDeterministic(t *testing.T) {
	s := MetricsSnapshot{
		Requests: 3, Succeeded: 2, Failed: 1, BreakerState: "closed",
		BreakerTransitions: []string{"open@4", "closed@9"},
	}
	a, b := s.String(), s.String()
	if a != b {
		t.Fatalf("snapshot String not stable")
	}
	if want := "breaker_transitions=open@4;closed@9\n"; !contains(a, want) {
		t.Fatalf("snapshot missing transition line:\n%s", a)
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
