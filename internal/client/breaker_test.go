package client

import (
	"reflect"
	"testing"
)

// drive applies a sequence of 'a' (allow), 's' (success), 'f'
// (failure) calls and returns the allow results in order.
func drive(b *breaker, seq string) []bool {
	var allows []bool
	for _, c := range seq {
		switch c {
		case 'a':
			allows = append(allows, b.allow())
		case 's':
			b.success()
		case 'f':
			b.failure()
		}
	}
	return allows
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: -1}, 1)
	for i := 0; i < 100; i++ {
		if !b.allow() {
			t.Fatalf("disabled breaker rejected call %d", i)
		}
		b.failure()
	}
	state, opens, _, _, tr := b.snapshot()
	if state != breakerClosed || opens != 0 || len(tr) != 0 {
		t.Fatalf("disabled breaker changed state: %s opens=%d tr=%v", state, opens, tr)
	}
}

func TestBreakerOpensAtExactDecision(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 3, ProbeAfter: 2}, 1)
	// Three allow+failure pairs: the third failure is decision 6.
	allows := drive(b, "afafaf")
	if !reflect.DeepEqual(allows, []bool{true, true, true}) {
		t.Fatalf("allows = %v", allows)
	}
	state, opens, _, _, tr := b.snapshot()
	if state != breakerOpen || opens != 1 {
		t.Fatalf("state=%s opens=%d", state, opens)
	}
	if want := []string{"open@6"}; !reflect.DeepEqual(tr, want) {
		t.Fatalf("transitions = %v, want %v", tr, want)
	}
}

func TestBreakerRejectsThenProbesThenCloses(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 3, ProbeAfter: 2}, 1)
	drive(b, "afafaf") // open@6
	// Two rejections absorb the budget: the second allow is the probe.
	allows := drive(b, "aa")
	if !reflect.DeepEqual(allows, []bool{false, true}) {
		t.Fatalf("open-phase allows = %v, want [false true]", allows)
	}
	b.success() // the probe succeeded
	state, _, halfOpens, closes, tr := b.snapshot()
	if state != breakerClosed || halfOpens != 1 || closes != 1 {
		t.Fatalf("state=%s halfOpens=%d closes=%d", state, halfOpens, closes)
	}
	want := []string{"open@6", "half-open@8", "closed@9"}
	if !reflect.DeepEqual(tr, want) {
		t.Fatalf("transitions = %v, want %v", tr, want)
	}
}

func TestBreakerFailedProbeDoublesBudget(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfter: 2}, 1)
	drive(b, "af")  // open, budget 2
	drive(b, "aaf") // reject, probe, probe fails -> reopen, budget 4
	allows := drive(b, "aaaaa")
	// The doubled budget absorbs three rejections, the fourth call is
	// the probe, and the fifth is rejected while the probe is in
	// flight.
	if !reflect.DeepEqual(allows, []bool{false, false, false, true, false}) {
		t.Fatalf("doubled-budget allows = %v", allows)
	}
	b.success()
	if state, opens, _, closes, _ := b.snapshot(); state != breakerClosed || opens != 2 || closes != 1 {
		t.Fatalf("state=%s opens=%d closes=%d", state, opens, closes)
	}
	// After a full close the doubling streak resets: the next open gets
	// the base budget again.
	drive(b, "af")
	allows = drive(b, "aa")
	if !reflect.DeepEqual(allows, []bool{false, true}) {
		t.Fatalf("post-recovery allows = %v, want base budget of 2", allows)
	}
}

func TestBreakerBudgetCap(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfter: 2, MaxProbeAfter: 4}, 1)
	if got := b.budget(1); got != 2 {
		t.Fatalf("budget(1) = %d", got)
	}
	if got := b.budget(2); got != 4 {
		t.Fatalf("budget(2) = %d", got)
	}
	for k := int64(3); k < 10; k++ {
		if got := b.budget(k); got != 4 {
			t.Fatalf("budget(%d) = %d, want capped at 4", k, got)
		}
	}
}

func TestBreakerProbeJitterDeterministic(t *testing.T) {
	mk := func(seed int64) *breaker {
		return newBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfter: 4, ProbeJitter: 8}, seed)
	}
	a, b := mk(42), mk(42)
	for k := int64(1); k <= 6; k++ {
		if a.budget(k) != b.budget(k) {
			t.Fatalf("same seed, different budget at open %d: %d vs %d", k, a.budget(k), b.budget(k))
		}
	}
	other := mk(43)
	differ := false
	for k := int64(1); k <= 6; k++ {
		if a.budget(k) != other.budget(k) {
			differ = true
		}
	}
	if !differ {
		t.Fatalf("different seeds produced identical jittered budgets across 6 opens")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfter: 1, ProbeSuccesses: 2}, 1)
	drive(b, "af") // open
	allows := drive(b, "a")
	if !reflect.DeepEqual(allows, []bool{true}) {
		t.Fatalf("probe allow = %v", allows)
	}
	// While the probe is in flight, further calls are rejected.
	if b.allow() {
		t.Fatalf("second concurrent probe allowed")
	}
	b.success() // probe 1 of 2: still half-open
	if state, _, _, _, _ := b.snapshot(); state != breakerHalf {
		t.Fatalf("state after first probe success = %s, want half-open", state)
	}
	if !b.allow() {
		t.Fatalf("second probe rejected")
	}
	b.success()
	if state, _, _, closes, _ := b.snapshot(); state != breakerClosed || closes != 1 {
		t.Fatalf("state=%s closes=%d after two probe successes", state, closes)
	}
}

// An aborted probe (the attempt resolved nothing about the server)
// releases the probe slot without counting a success or failure, so
// the breaker can probe again instead of wedging half-open.
func TestBreakerAbortReleasesProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfter: 1}, 1)
	b.failure() // closed -> open
	if !b.allow() {
		t.Fatalf("probe rejected")
	}
	b.abort()
	if !b.allow() {
		t.Fatalf("breaker wedged: no new probe allowed after an aborted one")
	}
	b.success()
	if state, _, _, closes, _ := b.snapshot(); state != breakerClosed || closes != 1 {
		t.Fatalf("state=%s closes=%d after the re-probe succeeded", state, closes)
	}
	// Outside half-open, abort is a no-op on state.
	b.abort()
	if state, _, _, _, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("abort changed a closed breaker to %s", state)
	}
}
