// Package client is the resilient Go client for the dpmd API: it
// wraps every request in capped exponential backoff with full seeded
// jitter, honors the server's Retry-After hints, generates an
// Idempotency-Key per logical request so retries after ambiguous
// network failures are provably byte-identical replays instead of
// duplicated work, verifies the server's end-to-end response digest
// (catching silent payload corruption on the wire), trips a
// deterministic circuit breaker when the service is down, and can
// hedge slow requests with a second identical attempt for tail
// latency.
//
// Determinism is a design constraint, not an accident: backoff jitter
// and breaker probe scheduling are splitmix64 draws keyed by the
// client's seed and attempt sequence, the breaker schedule counts
// calls rather than wall time, and hedges reuse the primary's
// idempotency key. For a fixed seed and a fixed fault schedule (see
// internal/netx) the full metrics snapshot — retries, breaker
// transitions, hedges won and lost — is identical run after run,
// which is exactly what tools/soaksmoke proves end to end.
//
// cmd/dpmctl is the CLI over this package; docs/serving.md documents
// the client contract.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sdpm/internal/faults"
)

const (
	streamBackoff = 0x636c69656e740a02
	streamIdemKey = 0x636c69656e740a03
)

// Config tunes the client. The zero value (plus a BaseURL) is usable:
// New fills every unset field with the defaults below.
type Config struct {
	// BaseURL is the dpmd endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Seed drives the backoff jitter, idempotency-key generation, and
	// breaker probe jitter. Clients with the same seed and request
	// sequence behave identically; give fleet members distinct seeds.
	Seed int64
	// MaxRetries is how many extra attempts a logical request gets
	// beyond its first (0 = 4; negative = none).
	MaxRetries int
	// BaseBackoff is the cap of the first retry's jittered sleep; the
	// cap doubles per retry (0 = 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (0 = 2s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds one network attempt (0 = 30s). The
	// per-request context bounds the whole retry loop.
	AttemptTimeout time.Duration
	// HedgeDelay, when positive, launches a second identical attempt
	// (same idempotency key, so the server coalesces) if the first has
	// not finished within the delay; the first usable response wins.
	HedgeDelay time.Duration
	// DisableDigestCheck turns off verification of the server's
	// X-Sdpm-Digest response header.
	DisableDigestCheck bool
	// KeepAlive re-enables HTTP keep-alive. The default (off) opens a
	// fresh connection per attempt, which keeps connection-indexed
	// fault schedules (internal/netx) aligned with attempt order.
	KeepAlive bool
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
}

func (c *Config) complete() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
}

// Client is the resilient dpmd client. Create with New; safe for
// concurrent use, though determinism guarantees assume a sequential
// request stream.
type Client struct {
	cfg    Config
	http   *http.Client
	brk    *breaker
	met    Metrics
	reqSeq atomic.Uint64 // logical request counter: keys idempotency
	attSeq atomic.Uint64 // attempt counter: keys backoff jitter
	sleep  func(ctx context.Context, d time.Duration) error
}

// New builds a client.
func New(cfg Config) *Client {
	cfg.complete()
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{DisableKeepAlives: !cfg.KeepAlive}
	}
	return &Client{
		cfg:   cfg,
		http:  &http.Client{Transport: tr},
		brk:   newBreaker(cfg.Breaker, cfg.Seed),
		sleep: sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics returns a snapshot of the client's counters and breaker
// state.
func (c *Client) Metrics() MetricsSnapshot {
	state, opens, halfOpens, closes, transitions := c.brk.snapshot()
	return MetricsSnapshot{
		Requests:           c.met.requests.Load(),
		Succeeded:          c.met.succeeded.Load(),
		Failed:             c.met.failed.Load(),
		Attempts:           c.met.attempts.Load(),
		Retries:            c.met.retries.Load(),
		BreakerFastFails:   c.met.fastFails.Load(),
		BreakerOpens:       opens,
		BreakerHalfOpens:   halfOpens,
		BreakerCloses:      closes,
		BreakerState:       state,
		BreakerTransitions: transitions,
		Hedges:             c.met.hedges.Load(),
		HedgesWon:          c.met.hedgesWon.Load(),
		HedgesLost:         c.met.hedgesLost.Load(),
		Replays:            c.met.replays.Load(),
		DigestMismatches:   c.met.digestBad.Load(),
		RetryAfterHonored:  c.met.retryAfter.Load(),
		NetErrors:          c.met.netErrors.Load(),
		HTTPRetries:        c.met.httpRetry.Load(),
	}
}

// Result is one successful response.
type Result struct {
	Status   int
	Body     []byte
	Header   http.Header
	Replayed bool // served from the server's idempotency cache
	Attempts int  // network attempts this logical request used
}

// APIError is a typed, non-retryable-or-exhausted HTTP failure: the
// server answered with the serve error envelope.
type APIError struct {
	Status     int
	Kind       string
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d (%s): %s", e.Status, e.Kind, e.Msg)
}

// DigestError reports a response whose body did not match the
// server's X-Sdpm-Digest header — the payload was corrupted in
// flight.
type DigestError struct{ Want, Got string }

func (e *DigestError) Error() string {
	return fmt.Sprintf("client: response digest mismatch (want %s, got %s)", e.Want, e.Got)
}

// BreakerOpenError reports a request rejected instantly because the
// circuit breaker is open.
type BreakerOpenError struct{}

func (e *BreakerOpenError) Error() string {
	return "client: circuit breaker open; request rejected without a network attempt"
}

// ExhaustedError reports a logical request that failed every attempt.
type ExhaustedError struct {
	Attempts int
	Last     error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("client: request failed after %d attempts: %v", e.Attempts, e.Last)
}
func (e *ExhaustedError) Unwrap() error { return e.Last }

// attemptError is an internal classified failure.
type attemptError struct {
	err        error
	retryable  bool
	breakerHit bool // counts toward the breaker's failure streak
	definitive bool // the server answered (any HTTP response arrived)
	retryAfter time.Duration
}

// Do issues one logical request with the full resilience stack and
// returns the first usable response. POST requests automatically
// carry a deterministic Idempotency-Key (unless idemKey overrides
// it), so every retry and hedge is a provably identical replay
// candidate on the server.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, idemKey string) (*Result, error) {
	c.met.requests.Add(1)
	reqIdx := c.reqSeq.Add(1) - 1
	if method == http.MethodPost && idemKey == "" {
		idemKey = c.idemKey(reqIdx)
	}
	if !c.brk.allow() {
		c.met.fastFails.Add(1)
		c.met.failed.Add(1)
		return nil, &BreakerOpenError{}
	}
	var (
		attempts int
		last     *attemptError
	)
	for try := 0; ; try++ {
		if try > 0 {
			// Re-consult the breaker for the retry (the first attempt
			// consumed the pre-loop allow).
			if !c.brk.allow() {
				c.met.fastFails.Add(1)
				break
			}
		}
		attempts++
		res, aerr := c.attempt(ctx, method, path, body, idemKey)
		if aerr == nil {
			c.brk.success()
			c.met.succeeded.Add(1)
			res.Attempts = attempts
			return res, nil
		}
		// Every attempt outcome resolves the breaker exactly once: a
		// half-open probe left unresolved would reject every future
		// request forever.
		if aerr.breakerHit {
			c.brk.failure()
		} else if aerr.retryable || aerr.definitive {
			// A non-breaker failure the server answered (429, any 4xx)
			// still proves it alive; reset the consecutive-failure
			// streak and let a pending probe count as successful.
			c.brk.success()
		} else {
			// Nothing proven about the server (request-build error,
			// caller cancellation): release a pending probe without
			// counting a success or failure.
			c.brk.abort()
		}
		last = aerr
		if !aerr.retryable || try >= c.cfg.MaxRetries || ctx.Err() != nil {
			break
		}
		c.met.retries.Add(1)
		d := c.backoff(try, aerr.retryAfter)
		if err := c.sleep(ctx, d); err != nil {
			break
		}
	}
	c.met.failed.Add(1)
	if last == nil {
		return nil, &ExhaustedError{Attempts: attempts, Last: errors.New("breaker opened mid-request")}
	}
	if !last.retryable {
		return nil, last.err
	}
	return nil, &ExhaustedError{Attempts: attempts, Last: last.err}
}

// idemKey derives the deterministic idempotency key for the reqIdx-th
// logical request of this client instance.
func (c *Client) idemKey(reqIdx uint64) string {
	// Two independent draws give 106 bits of key space; deterministic
	// per (seed, request index) so a restarted identical run replays
	// the same keys — which is what makes soak runs comparable.
	a := uint64(faults.Uniform(c.cfg.Seed, streamIdemKey, 2*reqIdx) * (1 << 53))
	b := uint64(faults.Uniform(c.cfg.Seed, streamIdemKey, 2*reqIdx+1) * (1 << 53))
	return fmt.Sprintf("sdpm-%013x%014x", a, b)
}

// backoff computes the try-th retry's sleep: full jitter under a
// doubling cap, stretched to honor a Retry-After hint.
func (c *Client) backoff(try int, retryAfter time.Duration) time.Duration {
	shift := try
	if shift < 0 {
		shift = 0
	} else if shift > 30 {
		shift = 30 // past this the cap below always applies
	}
	ceil := c.cfg.BaseBackoff << shift
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	seq := c.attSeq.Add(1) - 1
	d := time.Duration(faults.Uniform(c.cfg.Seed, streamBackoff, seq) * float64(ceil))
	if retryAfter > 0 {
		c.met.retryAfter.Add(1)
		if d < retryAfter {
			d = retryAfter
		}
	}
	return d
}

// attempt runs one network attempt, hedged when configured: if the
// primary has not finished within HedgeDelay, an identical request
// (same idempotency key) races it and the first usable response wins.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, idemKey string) (*Result, *attemptError) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()

	type outcome struct {
		res    *Result
		err    *attemptError
		hedged bool
	}
	ch := make(chan outcome, 2)
	send := func(hedged bool) {
		res, err := c.send(actx, method, path, body, idemKey)
		ch <- outcome{res, err, hedged}
	}
	go send(false)

	var hedgeLaunched bool
	var timer *time.Timer
	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 {
		timer = time.NewTimer(c.cfg.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var first *outcome
	pending := 1
	for pending > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			hedgeLaunched = true
			c.met.hedges.Add(1)
			pending++
			go send(true)
		case o := <-ch:
			pending--
			if o.err == nil {
				// First usable response wins; cancel the loser and wait
				// for it synchronously (it unblocks immediately on the
				// cancel) so the metrics are settled when Do returns.
				if hedgeLaunched {
					if o.hedged {
						c.met.hedgesWon.Add(1)
					} else {
						c.met.hedgesLost.Add(1)
					}
				}
				cancel()
				for ; pending > 0; pending-- {
					<-ch
				}
				return o.res, nil
			}
			if first == nil {
				first = &o
			}
			// A failure with a hedge still pending: wait for the other
			// side before giving up on the attempt.
		}
	}
	// Both (or the only) attempt failed; report the first failure.
	if actx.Err() != nil && ctx.Err() == nil && first != nil && !first.err.retryable {
		// The attempt timeout fired (not the caller's context): that
		// is a retryable condition whatever the inner error looked
		// like.
		first.err.retryable = true
		first.err.breakerHit = true
	}
	return nil, first.err
}

// send performs one HTTP exchange and classifies the outcome.
func (c *Client) send(ctx context.Context, method, path string, body []byte, idemKey string) (*Result, *attemptError) {
	c.met.attempts.Add(1)
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.cfg.BaseURL, "/")+path, rd)
	if err != nil {
		return nil, &attemptError{err: err, retryable: false}
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Transport-level failure: reset, refused, timeout, EOF. A
		// canceled attempt context — a hedge winner already returned,
		// or the caller gave up — is a cancellation artifact, not a
		// network fault: it must not inflate NetErrors or touch the
		// breaker.
		if errors.Is(ctx.Err(), context.Canceled) {
			return nil, &attemptError{err: err, retryable: false}
		}
		c.met.netErrors.Add(1)
		retryable := ctx.Err() == nil || errors.Is(ctx.Err(), context.DeadlineExceeded)
		return nil, &attemptError{err: err, retryable: retryable, breakerHit: retryable}
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		rerr = fmt.Errorf("client: reading response: %w", rerr)
		// Same cancellation-artifact rule as above for a read cut short
		// by a hedge winner or the caller.
		if errors.Is(ctx.Err(), context.Canceled) {
			return nil, &attemptError{err: rerr, retryable: false}
		}
		// Truncation, mid-body reset, or a corrupted chunk boundary.
		c.met.netErrors.Add(1)
		return nil, &attemptError{err: rerr, retryable: true, breakerHit: true}
	}
	if resp.StatusCode >= 400 {
		apiErr := decodeAPIError(resp, data)
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			// Overload shedding: server alive, back off and retry.
			c.met.httpRetry.Add(1)
			return nil, &attemptError{err: apiErr, retryable: true, definitive: true, retryAfter: apiErr.RetryAfter}
		case http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			c.met.httpRetry.Add(1)
			return nil, &attemptError{err: apiErr, retryable: true, breakerHit: true, definitive: true, retryAfter: apiErr.RetryAfter}
		default:
			// 400/404/409/413...: the request itself is wrong; the
			// service answered definitively. Terminal, not a breaker
			// failure — but it does resolve a half-open probe (Do maps
			// definitive to brk.success).
			return nil, &attemptError{err: apiErr, retryable: false, definitive: true}
		}
	}
	if !c.cfg.DisableDigestCheck {
		if want := resp.Header.Get("X-Sdpm-Digest"); strings.HasPrefix(want, "sha256=") {
			sum := sha256.Sum256(data)
			got := "sha256=" + hex.EncodeToString(sum[:])
			if got != want {
				c.met.digestBad.Add(1)
				return nil, &attemptError{err: &DigestError{Want: want, Got: got}, retryable: true, breakerHit: true, definitive: true}
			}
		}
	}
	res := &Result{
		Status:   resp.StatusCode,
		Body:     data,
		Header:   resp.Header,
		Replayed: resp.Header.Get("Idempotency-Replayed") == "true",
	}
	if res.Replayed {
		c.met.replays.Add(1)
	}
	return res, nil
}

// decodeAPIError parses the serve error envelope, falling back to the
// raw body.
func decodeAPIError(resp *http.Response, data []byte) *APIError {
	e := &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	var env struct {
		Error struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error.Kind != "" {
		e.Kind = env.Error.Kind
		e.Msg = env.Error.Message
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
