package oracle

import (
	"testing"

	"sdpm/internal/cycles"
	"sdpm/internal/disk"
	"sdpm/internal/insert"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
	"sdpm/internal/tracegen"
)

func rrSites(nd, n int, thinkMS float64) []tracegen.Site {
	m := cycles.New(cycles.DefaultClockHz, 0, 0)
	thinkCyc := m.CyclesForMS(thinkMS)
	out := make([]tracegen.Site, n)
	for i := range out {
		out[i] = tracegen.Site{
			File: "u", Unit: int64(i), Iter: int64(i),
			Disk: i % nd, Block: int64(i/nd) * 128, Bytes: 65536,
			Kind: trace.Read, CyclePos: int64(i) * thinkCyc,
		}
	}
	return out
}

func runBase(t *testing.T, ss []tracegen.Site, nd int, m *cycles.Model, p disk.Params) *sim.Result {
	t.Helper()
	bt := tracegen.FromSites("t", nd, ss, tracegen.Options{
		Model:            m,
		NominalServiceMS: func(b int64) float64 { return p.ServiceTimeMS(p.MaxRPM, b) },
	})
	res, err := sim.Run(bt, sim.Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestZeroNoiseZeroMisprediction(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 1)
	ss := rrSites(8, 800, 3.44)
	_, plan, err := insert.Instrument("rr", 8, ss, insert.Options{Mode: insert.ModeDRPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	base := runBase(t, ss, 8, m, p)
	st, err := Mispredictions(plan, base.Idles, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalGaps != 800+8 {
		t.Errorf("gaps = %d", st.TotalGaps)
	}
	// With exact cycle estimates the compiler's idle predictions are
	// exact, so every level matches the oracle.
	if st.Mispredicted != 0 {
		t.Errorf("mispredicted %d gaps (%.1f%%) with zero noise", st.Mispredicted, st.Pct)
	}
}

// hetSites builds sites spread over several nests with different
// compute densities, so per-disk idle periods land in the
// level-sensitive 10..60ms band where estimation bias flips the
// chosen speed.
func hetSites(nd, perNest, nests int) []tracegen.Site {
	m := cycles.New(cycles.DefaultClockHz, 0, 0)
	var out []tracegen.Site
	var cyc int64
	i := 0
	for n := 0; n < nests; n++ {
		think := 0.5 + float64(n%6)*0.9 // 0.5 .. 5.0 ms per request
		thinkCyc := m.CyclesForMS(think)
		for k := 0; k < perNest; k++ {
			cyc += thinkCyc
			out = append(out, tracegen.Site{
				Nest: n, Iter: int64(k), File: "u", Unit: int64(i),
				Disk: i % nd, Block: int64(i/nd) * 128, Bytes: 65536,
				Kind: trace.Read, CyclePos: cyc,
			})
			i++
		}
	}
	return out
}

func TestBiasCausesMispredictions(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 10, 9)
	m.BiasPct = 25
	ss := hetSites(8, 240, 12)
	_, plan, err := insert.Instrument("het", 8, ss, insert.Options{Mode: insert.ModeDRPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	base := runBase(t, ss, 8, m, p)
	st, err := Mispredictions(plan, base.Idles, p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 3 reports 5-27% mispredictions.
	if st.Pct < 1 {
		t.Errorf("misprediction %.2f%% too low despite 25%% bias", st.Pct)
	}
	if st.Pct > 60 {
		t.Errorf("misprediction %.1f%% implausibly high", st.Pct)
	}
	if st.MeanAbsLevelError <= 0 {
		t.Error("zero level error with mispredictions present")
	}
}

func TestMoreBiasMoreMispredictions(t *testing.T) {
	p := disk.DefaultParams()
	ss := hetSites(8, 240, 12)
	pcts := make([]float64, 0, 3)
	for _, bias := range []float64{0, 15, 40} {
		m := cycles.New(cycles.DefaultClockHz, 5, 9)
		m.BiasPct = bias
		_, plan, err := insert.Instrument("het", 8, ss, insert.Options{Mode: insert.ModeDRPM, Disk: p, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		base := runBase(t, ss, 8, m, p)
		st, err := Mispredictions(plan, base.Idles, p)
		if err != nil {
			t.Fatal(err)
		}
		pcts = append(pcts, st.Pct)
	}
	if !(pcts[0] < pcts[1] && pcts[1] <= pcts[2]) {
		t.Errorf("misprediction not increasing with bias: %v", pcts)
	}
}

func TestMispredictionsErrors(t *testing.T) {
	p := disk.DefaultParams()
	ss := rrSites(2, 8, 3.44)
	_, planTPM, err := insert.Instrument("rr", 2, ss, insert.Options{Mode: insert.ModeTPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mispredictions(planTPM, nil, p); err == nil {
		t.Error("TPM plan accepted")
	}
	_, plan, err := insert.Instrument("rr", 2, ss, insert.Options{Mode: insert.ModeDRPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mispredictions(plan, make([][]sim.IdlePeriod, 1), p); err == nil {
		t.Error("disk count mismatch accepted")
	}
	bad := make([][]sim.IdlePeriod, 2)
	bad[0] = make([]sim.IdlePeriod, 1)
	bad[1] = make([]sim.IdlePeriod, 1)
	if _, err := Mispredictions(plan, bad, p); err == nil {
		t.Error("gap count mismatch accepted")
	}
}
