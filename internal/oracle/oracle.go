// Package oracle provides the offline analyses that compare the
// compiler-managed schemes against the ideal (oracle) schemes, in
// particular the disk-speed misprediction rate of the paper's
// Table 3: for every idle period, the RPM level CMDRPM chose (from
// the compiler's predicted idle length) versus the level IDRPM would
// choose given the actual idle length observed in simulation.
package oracle

import (
	"fmt"

	"sdpm/internal/disk"
	"sdpm/internal/insert"
	"sdpm/internal/sim"
)

// MispredictStats summarizes the speed-misprediction analysis.
type MispredictStats struct {
	// TotalGaps is the number of idle periods compared.
	TotalGaps int
	// Mispredicted is the number whose planned level differs from
	// the oracle-optimal level.
	Mispredicted int
	// Pct is 100 * Mispredicted / TotalGaps.
	Pct float64
	// MeanAbsLevelError is the mean absolute distance, in RPM steps,
	// between the planned and optimal levels.
	MeanAbsLevelError float64
}

// Mispredictions compares a CMDRPM plan against the oracle-optimal
// speed choices for the actual idle periods recorded by a base
// simulation run. The base run must have been produced from the same
// request sites (same per-disk request sequence), so its idle-period
// lists align index-for-index with the plan's gap decisions.
func Mispredictions(plan *insert.Plan, baseIdles [][]sim.IdlePeriod, p disk.Params) (MispredictStats, error) {
	if plan.Mode != insert.ModeDRPM {
		return MispredictStats{}, fmt.Errorf("oracle: misprediction analysis applies to CMDRPM plans")
	}
	if len(baseIdles) != len(plan.Levels) {
		return MispredictStats{}, fmt.Errorf("oracle: %d disks in base run, %d in plan", len(baseIdles), len(plan.Levels))
	}
	var st MispredictStats
	var absErr int
	tbl := disk.TableFor(p)
	for d := range plan.Levels {
		if len(baseIdles[d]) != len(plan.Levels[d]) {
			return MispredictStats{}, fmt.Errorf("oracle: disk %d has %d actual idle periods, plan has %d",
				d, len(baseIdles[d]), len(plan.Levels[d]))
		}
		for g, planned := range plan.Levels[d] {
			actual := baseIdles[d][g].LenMS
			trailing := g == len(plan.Levels[d])-1
			var optimal int
			if trailing {
				optimal, _ = tbl.BestRPMForTrailingIdle(actual)
			} else {
				optimal, _ = tbl.BestRPMForIdle(actual)
			}
			st.TotalGaps++
			if planned != optimal {
				st.Mispredicted++
				diff := (planned - optimal) / p.RPMStep
				if diff < 0 {
					diff = -diff
				}
				absErr += diff
			}
		}
	}
	if st.TotalGaps > 0 {
		st.Pct = 100 * float64(st.Mispredicted) / float64(st.TotalGaps)
		st.MeanAbsLevelError = float64(absErr) / float64(st.TotalGaps)
	}
	return st, nil
}
