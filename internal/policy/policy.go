// Package policy implements the disk power management schemes the
// paper evaluates against (Section 4.2):
//
//   - Base: no power management.
//   - TPM: traditional threshold-based spin-down (reactive).
//   - ITPM: ideal TPM with an oracle idle-period predictor.
//   - DRPM: the reactive dynamic-RPM controller of Gurumurthi et al.,
//     with response-time windows and upper/lower tolerances.
//   - IDRPM: ideal DRPM with an oracle idle-period predictor.
//
// The compiler-managed schemes (CMTPM, CMDRPM) are not policies: they
// arrive as explicit power-op events in the instrumented trace and
// are executed by the simulator directly.
//
// Oracle policies exploit the simulator's lazy energy accounting: at
// each request issue the idle period that just ended is fully known
// and still uncommitted, so the optimal action can be applied
// retroactively — which is exactly the semantics of an oracle
// predictor, with no execution-time penalty by construction.
package policy

import (
	"sdpm/internal/disk"
	"sdpm/internal/obs/events"
	"sdpm/internal/sim"
)

// Base is the no-power-management scheme.
type Base struct{}

// NewBase returns the base (no power management) policy.
func NewBase() *Base { return &Base{} }

// Name implements sim.Policy.
func (*Base) Name() string { return "Base" }

// BeforeService implements sim.Policy.
func (*Base) BeforeService(*sim.Machine, int, float64) {}

// AfterService implements sim.Policy.
func (*Base) AfterService(*sim.Machine, int, float64, float64) {}

// Finish implements sim.Policy.
func (*Base) Finish(*sim.Machine, float64) {}

// Horizon implements sim.HorizonPolicy: Base never acts, so the
// batched executor may skip every decision point.
func (*Base) Horizon() sim.Horizon { return sim.Horizon{} }

// DecisionTrigger implements sim.TriggerPolicy. Base never decides,
// so the label is empty.
func (*Base) DecisionTrigger() string { return "" }

// TPM is the traditional reactive spin-down policy: after a disk has
// been idle for ThresholdMS it is spun down; the next request pays
// the full spin-up delay.
type TPM struct {
	p disk.Params
	// ThresholdMS is the idleness threshold.
	ThresholdMS float64
}

// NewTPM returns a reactive TPM policy with the given idleness
// threshold; a non-positive threshold selects the break-even
// threshold.
func NewTPM(p disk.Params, thresholdMS float64) *TPM {
	if thresholdMS <= 0 {
		thresholdMS = p.TPMBreakEvenMS()
	}
	return &TPM{p: p, ThresholdMS: thresholdMS}
}

// Name implements sim.Policy.
func (*TPM) Name() string { return "TPM" }

// DecisionTrigger implements sim.TriggerPolicy: TPM decisions fire on
// idleness-threshold expiry.
func (*TPM) DecisionTrigger() string { return events.TrigThreshold }

// BeforeService spins the disk down retroactively if the gap that
// just ended exceeded the threshold; the simulator then charges the
// on-demand spin-up to this request.
func (t *TPM) BeforeService(m *sim.Machine, d int, now float64) {
	start := m.IdleFrom(d)
	if now-start > t.ThresholdMS && m.StatusOf(d) == sim.StSpinning && m.CurRPM(d) == t.p.MaxRPM {
		m.SpinDownAt(d, start+t.ThresholdMS)
	}
}

// AfterService implements sim.Policy.
func (*TPM) AfterService(*sim.Machine, int, float64, float64) {}

// Horizon implements sim.HorizonPolicy: BeforeService acts only when
// the ended idle period exceeds the threshold on a full-speed disk.
// The predicate repeats BeforeService's own comparisons (the status
// check is the executor's precondition), so it can never disagree
// with the real call.
func (t *TPM) Horizon() sim.Horizon {
	return sim.Horizon{
		NoOpBefore: func(d int, start, now float64, rpm int) bool {
			return !(now-start > t.ThresholdMS && rpm == t.p.MaxRPM)
		},
	}
}

// Finish spins down disks whose trailing idleness exceeds the
// threshold (no spin-up needed before program end).
func (t *TPM) Finish(m *sim.Machine, endT float64) {
	for d := 0; d < m.NumDisks(); d++ {
		start := m.IdleFrom(d)
		if endT-start > t.ThresholdMS && m.StatusOf(d) == sim.StSpinning {
			m.SpinDownAt(d, start+t.ThresholdMS)
		}
	}
}

// ITPM is the ideal TPM scheme: an oracle knows every idle period's
// length, spins down only when the period is long enough to save
// energy, and pre-activates the disk so no request ever waits.
type ITPM struct {
	p disk.Params
}

// NewITPM returns the ideal TPM policy.
func NewITPM(p disk.Params) *ITPM { return &ITPM{p: p} }

// Name implements sim.Policy.
func (*ITPM) Name() string { return "ITPM" }

// DecisionTrigger implements sim.TriggerPolicy: ITPM places actions
// with oracle knowledge of the ended idle period.
func (*ITPM) DecisionTrigger() string { return events.TrigOracle }

// BeforeService applies the oracle decision to the idle period that
// just ended: spin down at its start and spin up exactly SpinUpMS
// before now, if and only if that saves energy.
func (t *ITPM) BeforeService(m *sim.Machine, d int, now float64) {
	start := m.IdleFrom(d)
	idle := now - start
	if m.StatusOf(d) != sim.StSpinning || m.CurRPM(d) != t.p.MaxRPM {
		return
	}
	if t.p.StandbyEnergyJ(idle) < t.p.IdleEnergyJ(idle) {
		m.SpinDownAt(d, start)
		m.SpinUpAt(d, now-t.p.SpinUpMS)
	}
}

// AfterService implements sim.Policy.
func (*ITPM) AfterService(*sim.Machine, int, float64, float64) {}

// Horizon implements sim.HorizonPolicy: the oracle acts only when
// standby beats idling for the just-ended period, evaluated with the
// exact comparison BeforeService performs.
func (t *ITPM) Horizon() sim.Horizon {
	return sim.Horizon{
		NoOpBefore: func(d int, start, now float64, rpm int) bool {
			if rpm != t.p.MaxRPM {
				return true
			}
			idle := now - start
			return !(t.p.StandbyEnergyJ(idle) < t.p.IdleEnergyJ(idle))
		},
	}
}

// Finish exploits each disk's trailing idle period: spinning down is
// worthwhile whenever it saves energy, and no spin-up is needed.
func (t *ITPM) Finish(m *sim.Machine, endT float64) {
	for d := 0; d < m.NumDisks(); d++ {
		start := m.IdleFrom(d)
		if m.StatusOf(d) != sim.StSpinning {
			continue
		}
		if t.p.TrailingStandbyWins(endT - start) {
			m.SpinDownAt(d, start)
		}
	}
}

// DefaultIdleStepMS is the idleness per one-step RPM ramp of the
// reactive DRPM controller.
const DefaultIdleStepMS = 40

// DRPM is the reactive dynamic-RPM policy of Gurumurthi et al.: each
// disk autonomously ramps down during idleness, one RPM step per
// IdleStepMS, and requests are serviced at whatever level the disk
// has reached — the reactive scheme's performance penalty. The array
// controller watches the average response time over
// WindowSize-request windows (array-wide): if the change since the
// previous window exceeds the upper tolerance, every disk is
// commanded back to full speed and further ramping is suspended; if
// it stays below the lower tolerance, ramping is allowed again.
type DRPM struct {
	p disk.Params
	// IdleStepMS is the idle time per one-step ramp.
	IdleStepMS float64

	rampOK   bool
	winSum   float64
	winN     int
	prevAvg  float64
	havePrev bool
}

// NewDRPM returns a reactive DRPM policy for a subsystem of numDisks
// disks.
func NewDRPM(p disk.Params, numDisks int) *DRPM {
	_ = numDisks // the controller state is array-wide
	return &DRPM{p: p, IdleStepMS: DefaultIdleStepMS, rampOK: true}
}

// Name implements sim.Policy.
func (*DRPM) Name() string { return "DRPM" }

// DecisionTrigger implements sim.TriggerPolicy: DRPM decisions come
// from the autonomous idleness ramp (window-trip restores are
// relabelled "controller" by the simulator's AfterService context).
func (*DRPM) DecisionTrigger() string { return events.TrigRamp }

// BeforeService ramps the disk down through the idle period that just
// ended: one RPM step per IdleStepMS of idleness, floored by the
// controller. The request is then serviced at whatever level the
// disk reached — the reactive scheme's performance penalty.
func (r *DRPM) BeforeService(m *sim.Machine, d int, now float64) {
	r.rampDown(m, d, m.IdleFrom(d), now)
}

func (r *DRPM) rampDown(m *sim.Machine, d int, start, end float64) {
	if !r.rampOK {
		return
	}
	if m.StatusOf(d) == sim.StStandby || m.StatusOf(d) == sim.StDown || m.StatusOf(d) == sim.StUp {
		return
	}
	cur := m.CurRPM(d)
	t := start + r.IdleStepMS
	for cur > r.p.MinRPM && t <= end {
		cur -= r.p.RPMStep
		if cur < r.p.MinRPM {
			cur = r.p.MinRPM
		}
		m.SetRPMAt(d, t, cur)
		t += r.IdleStepMS
	}
}

// Horizon implements sim.HorizonPolicy. BeforeService (rampDown) is
// a no-op when ramping is suspended, the disk is already at the
// floor, or the idle period is shorter than one ramp step; the
// closure reads the live controller state, so a window trip
// suspending or re-enabling ramps is reflected immediately. The
// controller window needs every response time, so AfterService runs
// per request even on the fast path.
func (r *DRPM) Horizon() sim.Horizon {
	return sim.Horizon{
		NoOpBefore: func(d int, start, now float64, rpm int) bool {
			if !r.rampOK {
				return true
			}
			if rpm <= r.p.MinRPM {
				return true
			}
			return start+r.IdleStepMS > now
		},
		AfterPerRequest: true,
	}
}

// AfterService feeds the controller window and gates the ramping.
func (r *DRPM) AfterService(m *sim.Machine, d int, end, responseMS float64) {
	r.winSum += responseMS
	r.winN++
	if r.winN < r.p.WindowSize {
		return
	}
	avg := r.winSum / float64(r.winN)
	r.winSum, r.winN = 0, 0
	if r.havePrev && r.prevAvg > 0 {
		pct := (avg - r.prevAvg) / r.prevAvg * 100
		switch {
		case pct > r.p.UpperTolerancePct:
			// Performance degraded: restore full speed everywhere
			// and suspend ramping until performance stabilizes.
			r.rampOK = false
			for dd := 0; dd < m.NumDisks(); dd++ {
				m.SetRPMAt(dd, end, r.p.MaxRPM)
			}
		case pct < r.p.LowerTolerancePct:
			// Performance stable: ramping allowed.
			r.rampOK = true
		}
	}
	r.prevAvg = avg
	r.havePrev = true
}

// Finish ramps each disk down through its trailing idleness.
func (r *DRPM) Finish(m *sim.Machine, endT float64) {
	for d := 0; d < m.NumDisks(); d++ {
		r.rampDown(m, d, m.IdleFrom(d), endT)
	}
}

// IDRPM is the ideal DRPM scheme: an oracle knows every idle
// period's length and dips each one to the energy-optimal RPM level,
// returning to full speed exactly in time for the next request.
type IDRPM struct {
	p disk.Params
	// tbl serves the per-idle-period best-RPM scans from the memoized
	// power table (bit-identical to the Params methods).
	tbl *disk.Table
}

// NewIDRPM returns the ideal DRPM policy.
func NewIDRPM(p disk.Params) *IDRPM { return &IDRPM{p: p, tbl: disk.TableFor(p)} }

// Name implements sim.Policy.
func (*IDRPM) Name() string { return "IDRPM" }

// DecisionTrigger implements sim.TriggerPolicy: IDRPM dips periods
// with oracle knowledge of their length.
func (*IDRPM) DecisionTrigger() string { return events.TrigOracle }

// BeforeService dips the just-ended idle period optimally.
func (r *IDRPM) BeforeService(m *sim.Machine, d int, now float64) {
	if m.StatusOf(d) != sim.StSpinning || m.CurRPM(d) != r.p.MaxRPM {
		return
	}
	start := m.IdleFrom(d)
	idle := now - start
	if rpm, _ := r.tbl.BestRPMForIdle(idle); rpm != r.p.MaxRPM {
		m.SetRPMAt(d, start, rpm)
		m.SetRPMAt(d, now-r.p.TransitionTimeMS(rpm, r.p.MaxRPM), r.p.MaxRPM)
	}
}

// AfterService implements sim.Policy.
func (*IDRPM) AfterService(*sim.Machine, int, float64, float64) {}

// Horizon implements sim.HorizonPolicy: the oracle acts only when
// some lower level beats full-speed idling for the just-ended
// period. The check runs the same table scan BeforeService runs.
func (r *IDRPM) Horizon() sim.Horizon {
	return sim.Horizon{
		NoOpBefore: func(d int, start, now float64, rpm int) bool {
			if rpm != r.p.MaxRPM {
				return true
			}
			best, _ := r.tbl.BestRPMForIdle(now - start)
			return best == r.p.MaxRPM
		},
	}
}

// Finish dips each disk's trailing idle period to the level
// minimizing one-way transition plus residence energy.
func (r *IDRPM) Finish(m *sim.Machine, endT float64) {
	for d := 0; d < m.NumDisks(); d++ {
		if m.StatusOf(d) != sim.StSpinning || m.CurRPM(d) != r.p.MaxRPM {
			continue
		}
		start := m.IdleFrom(d)
		if best, _ := r.tbl.BestRPMForTrailingIdle(endT - start); best != r.p.MaxRPM {
			m.SetRPMAt(d, start, best)
		}
	}
}
