package policy

import (
	"math"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

// roundRobinTrace models the paper's default workload shape: one
// 64KB request every thinkMS of compute, striped round-robin over
// numDisks disks.
func roundRobinTrace(numDisks, n int, thinkMS float64) *trace.Trace {
	tr := &trace.Trace{Program: "rr", NumDisks: numDisks}
	arr := 0.0
	for i := 0; i < n; i++ {
		arr += thinkMS
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: thinkMS,
			Req:   trace.Request{ArrivalMS: arr, Disk: i % numDisks, Bytes: 65536, Kind: trace.Read},
		})
	}
	return tr
}

// burstTrace produces long per-disk idleness: a burst of requests to
// each disk in turn, with nestGapMS between bursts.
func burstTrace(numDisks, perBurst int, thinkMS float64) *trace.Trace {
	tr := &trace.Trace{Program: "burst", NumDisks: numDisks}
	arr := 0.0
	for d := 0; d < numDisks; d++ {
		for i := 0; i < perBurst; i++ {
			arr += thinkMS
			tr.Events = append(tr.Events, trace.Event{
				Kind:  trace.EvRequest,
				GapMS: thinkMS,
				Req:   trace.Request{ArrivalMS: arr, Disk: d, Bytes: 65536, Kind: trace.Read},
			})
		}
	}
	return tr
}

func run(t *testing.T, tr *trace.Trace, pol sim.Policy) *sim.Result {
	t.Helper()
	res, err := sim.Run(tr, sim.Config{Disk: disk.DefaultParams(), Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBasePolicyMatchesNil(t *testing.T) {
	tr := roundRobinTrace(4, 100, 3.44)
	a := run(t, tr, NewBase())
	b, err := sim.Run(tr, sim.Config{Disk: disk.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.EnergyJ-b.EnergyJ) > 1e-9 || math.Abs(a.ExecMS-b.ExecMS) > 1e-9 {
		t.Error("Base policy diverges from nil policy")
	}
	if a.Scheme != "Base" {
		t.Errorf("scheme = %q", a.Scheme)
	}
}

func TestTPMUselessOnShortGaps(t *testing.T) {
	// The paper's central TPM observation: with ~73ms per-disk gaps,
	// TPM never spins down — no savings, no penalty.
	p := disk.DefaultParams()
	tr := roundRobinTrace(8, 800, 3.44)
	base := run(t, tr, NewBase())
	tpm := run(t, tr, NewTPM(p, 0))
	if math.Abs(tpm.EnergyJ-base.EnergyJ) > 1e-6 {
		t.Errorf("TPM energy %g != base %g", tpm.EnergyJ, base.EnergyJ)
	}
	if math.Abs(tpm.ExecMS-base.ExecMS) > 1e-6 {
		t.Errorf("TPM exec %g != base %g", tpm.ExecMS, base.ExecMS)
	}
	for _, st := range tpm.Disks {
		if st.SpinDowns != 0 {
			t.Error("TPM spun down on short gaps")
		}
	}
}

func TestTPMSpinsDownOnLongGapsWithPenalty(t *testing.T) {
	p := disk.DefaultParams()
	// Bursts give each disk a long idle tail; TPM spins down and the
	// burst's first request pays the spin-up delay.
	tr := burstTrace(4, 3000, 10) // 30s per burst
	base := run(t, tr, NewBase())
	tpm := run(t, tr, NewTPM(p, 0))
	if tpm.EnergyJ >= base.EnergyJ {
		t.Errorf("TPM saved nothing on long gaps: %g >= %g", tpm.EnergyJ, base.EnergyJ)
	}
	if tpm.ExecMS <= base.ExecMS {
		t.Errorf("reactive TPM shows no spin-up penalty: %g <= %g", tpm.ExecMS, base.ExecMS)
	}
	spins := 0
	for _, st := range tpm.Disks {
		spins += st.SpinDowns
	}
	if spins == 0 {
		t.Error("no spin-downs on long gaps")
	}
}

func TestITPMNeverWorseAndNeverSlower(t *testing.T) {
	p := disk.DefaultParams()
	for _, tr := range []*trace.Trace{
		roundRobinTrace(8, 400, 3.44),
		burstTrace(4, 3000, 10),
	} {
		base := run(t, tr, NewBase())
		itpm := run(t, tr, NewITPM(p))
		if itpm.EnergyJ > base.EnergyJ+1e-6 {
			t.Errorf("%s: ITPM worse than base: %g > %g", tr.Program, itpm.EnergyJ, base.EnergyJ)
		}
		if math.Abs(itpm.ExecMS-base.ExecMS) > 1e-6 {
			t.Errorf("%s: ITPM changed exec time", tr.Program)
		}
		if itpm.TotalWaitMS > 1e-9 {
			t.Errorf("%s: ITPM caused waiting", tr.Program)
		}
	}
}

func TestITPMBeatsReactiveTPMOnLongGaps(t *testing.T) {
	p := disk.DefaultParams()
	tr := burstTrace(4, 3000, 10)
	tpm := run(t, tr, NewTPM(p, 0))
	itpm := run(t, tr, NewITPM(p))
	if itpm.EnergyJ >= tpm.EnergyJ {
		t.Errorf("ITPM %g not better than TPM %g", itpm.EnergyJ, tpm.EnergyJ)
	}
}

func TestIDRPMSavesBigOnShortGapsNoPenalty(t *testing.T) {
	p := disk.DefaultParams()
	tr := roundRobinTrace(8, 800, 3.44)
	base := run(t, tr, NewBase())
	id := run(t, tr, NewIDRPM(p))
	if math.Abs(id.ExecMS-base.ExecMS) > 1e-6 || id.TotalWaitMS > 1e-9 {
		t.Fatalf("IDRPM penalty: exec %g vs %g, wait %g", id.ExecMS, base.ExecMS, id.TotalWaitMS)
	}
	saving := 1 - id.EnergyJ/base.EnergyJ
	// The paper reports ~51% for IDRPM; demand a substantial saving.
	if saving < 0.35 {
		t.Errorf("IDRPM saving only %.1f%%", saving*100)
	}
}

func TestReactiveDRPMSavesLessWithPenalty(t *testing.T) {
	p := disk.DefaultParams()
	tr := roundRobinTrace(8, 2000, 3.44)
	base := run(t, tr, NewBase())
	dr := run(t, tr, NewDRPM(p, 8))
	id := run(t, tr, NewIDRPM(p))
	if dr.EnergyJ >= base.EnergyJ {
		t.Fatalf("DRPM saved nothing: %g >= %g", dr.EnergyJ, base.EnergyJ)
	}
	if dr.EnergyJ <= id.EnergyJ {
		t.Errorf("reactive DRPM %g beat the oracle %g", dr.EnergyJ, id.EnergyJ)
	}
	if dr.ExecMS <= base.ExecMS {
		t.Errorf("reactive DRPM shows no penalty: %g <= %g", dr.ExecMS, base.ExecMS)
	}
	penalty := dr.ExecMS/base.ExecMS - 1
	if penalty < 0.02 || penalty > 0.6 {
		t.Errorf("DRPM penalty %.1f%% outside plausible band", penalty*100)
	}
}

func TestDRPMShiftsAndStaysAboveFloor(t *testing.T) {
	p := disk.DefaultParams()
	tr := roundRobinTrace(8, 3000, 3.44)
	res := run(t, tr, NewDRPM(p, 8))
	shifts := 0
	for _, st := range res.Disks {
		shifts += st.RPMShifts
	}
	if shifts == 0 {
		t.Error("reactive DRPM never shifted")
	}
}

func TestDRPMTooShortGapsNoShift(t *testing.T) {
	// Per-disk gaps below IdleStepMS never trigger ramping: the
	// reactive controller cannot exploit them.
	p := disk.DefaultParams()
	tr := roundRobinTrace(2, 500, 3.44) // ~13.5ms gaps
	res := run(t, tr, NewDRPM(p, 2))
	for d, st := range res.Disks {
		if st.RPMShifts != 0 {
			t.Errorf("disk %d shifted %d times on sub-step gaps", d, st.RPMShifts)
		}
	}
}

func TestOracleTrailingIdleExploited(t *testing.T) {
	p := disk.DefaultParams()
	// One early request, then a long compute tail on another disk's
	// requests: disk 0's trailing idleness should be exploited by
	// both oracles.
	tr := &trace.Trace{Program: "tail", NumDisks: 2}
	tr.Events = append(tr.Events,
		trace.Event{Kind: trace.EvRequest, GapMS: 1, Req: trace.Request{ArrivalMS: 1, Disk: 0, Bytes: 65536}},
		trace.Event{Kind: trace.EvRequest, GapMS: 100000, Req: trace.Request{ArrivalMS: 100001, Disk: 1, Bytes: 65536}},
	)
	base := run(t, tr, NewBase())
	itpm := run(t, tr, NewITPM(p))
	id := run(t, tr, NewIDRPM(p))
	if itpm.EnergyJ >= base.EnergyJ {
		t.Error("ITPM ignored trailing idleness")
	}
	if id.EnergyJ >= base.EnergyJ {
		t.Error("IDRPM ignored trailing idleness")
	}
	if itpm.Disks[0].SpinDowns != 1 {
		t.Errorf("ITPM trailing spin-downs = %d", itpm.Disks[0].SpinDowns)
	}
}

func TestSchemeOrderingOnDefaultShape(t *testing.T) {
	// The headline ordering of Figure 3 on the untransformed
	// workload shape: Base >= TPM ~= ITPM > DRPM > IDRPM, with
	// CM-schemes between DRPM and IDRPM (tested in the insert
	// package).
	p := disk.DefaultParams()
	tr := roundRobinTrace(8, 2000, 3.44)
	base := run(t, tr, NewBase())
	tpm := run(t, tr, NewTPM(p, 0))
	itpm := run(t, tr, NewITPM(p))
	dr := run(t, tr, NewDRPM(p, 8))
	id := run(t, tr, NewIDRPM(p))

	if math.Abs(tpm.EnergyJ-base.EnergyJ) > base.EnergyJ*0.01 {
		t.Errorf("TPM should be ~= base: %g vs %g", tpm.EnergyJ, base.EnergyJ)
	}
	if math.Abs(itpm.EnergyJ-base.EnergyJ) > base.EnergyJ*0.01 {
		t.Errorf("ITPM should be ~= base on short gaps: %g vs %g", itpm.EnergyJ, base.EnergyJ)
	}
	if !(dr.EnergyJ < base.EnergyJ*0.95) {
		t.Errorf("DRPM should save: %g vs base %g", dr.EnergyJ, base.EnergyJ)
	}
	if !(id.EnergyJ < dr.EnergyJ) {
		t.Errorf("IDRPM %g should beat DRPM %g", id.EnergyJ, dr.EnergyJ)
	}
}
