// Package core wires the compiler side (analysis, transformation,
// power-call insertion, trace generation) to the simulator side
// (policies, disk model) into the pipelines the paper evaluates: it
// prepares a program on a disk subsystem, runs it under any of the
// seven power-management schemes of Section 4.2, and applies the
// code/layout versions of Section 6.
package core

import (
	"fmt"
	"sync"

	"sdpm/internal/cycles"
	"sdpm/internal/dap"
	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/insert"
	"sdpm/internal/ir"
	"sdpm/internal/layout"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/oracle"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
	"sdpm/internal/tracegen"
	"sdpm/internal/xform"
)

// Scheme names a disk power management scheme of Section 4.2.
type Scheme string

// The seven evaluated schemes.
const (
	Base   Scheme = "Base"
	TPM    Scheme = "TPM"
	ITPM   Scheme = "ITPM"
	DRPM   Scheme = "DRPM"
	IDRPM  Scheme = "IDRPM"
	CMTPM  Scheme = "CMTPM"
	CMDRPM Scheme = "CMDRPM"
)

// AllSchemes returns the schemes in the paper's Figure 3 order.
func AllSchemes() []Scheme {
	return []Scheme{Base, TPM, ITPM, DRPM, IDRPM, CMTPM, CMDRPM}
}

// Version names a code/layout version of Section 6.
type Version string

// The evaluated code versions.
const (
	VOrig Version = "orig"
	VLF   Version = "LF"
	VTL   Version = "TL"
	VLFDL Version = "LF+DL"
	VTLDL Version = "TL+DL"
	// VIC is loop interchange — an extension beyond the paper's two
	// transformations, implementing its remark that other loop
	// transformations can be adapted to disk layouts.
	VIC Version = "IC"
)

// AllVersions returns the code versions in the paper's order.
func AllVersions() []Version {
	return []Version{VOrig, VLF, VTL, VLFDL, VTLDL}
}

// ExtendedVersions returns the paper's versions plus the extensions.
func ExtendedVersions() []Version {
	return append(AllVersions(), VIC)
}

// Config collects every knob of the experimental platform.
type Config struct {
	// Disk holds the Table 1 disk parameters.
	Disk disk.Params
	// NumDisks is the subsystem size; the default striping uses all
	// of them (Table 1's stripe factor).
	NumDisks int
	// UnitBytes is the default stripe unit size.
	UnitBytes int64
	// CacheUnits is the buffer cache capacity in stripe units.
	CacheUnits int
	// Model is the cycle/jitter model (nil: exact 750 MHz).
	Model *cycles.Model
	// PowerCallOverheadMS is Tm of Equation 1.
	PowerCallOverheadMS float64
	// DisablePreactivation drops pre-activation calls (ablation).
	DisablePreactivation bool
	// NoCache disables the buffer cache (ablation).
	NoCache bool
	// DistanceAwareSeek replaces the average-seek model with the
	// square-root seek curve over actual head movement.
	DistanceAwareSeek bool
	// Faults configures deterministic fault injection (spin-up
	// failures, bad-sector remaps, degradation windows); the zero
	// value injects nothing.
	Faults faults.Config
	// FaultSeed seeds the fault plan; the same seed always yields the
	// same fault schedule, at any worker count.
	FaultSeed int64
	// Audit verifies the simulator's conservation invariants after
	// every run (see sim.Audit), failing the run with a structured
	// report on any violation. Auditing never changes results, so the
	// flag is deliberately excluded from Fingerprint — audited and
	// unaudited runs share cache entries and journal records.
	Audit bool
	// DisableBatch forces the simulator's general per-request path
	// instead of the batched steady-state executor (the -batch=off
	// escape hatch). Results are bit-identical either way, so — like
	// Audit — the flag is excluded from Fingerprint: batched and
	// unbatched runs share cache entries and journal records.
	DisableBatch bool
}

// DefaultConfig returns the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		Disk:                disk.DefaultParams(),
		NumDisks:            8,
		UnitBytes:           65536,
		CacheUnits:          16,
		PowerCallOverheadMS: sim.DefaultPowerCallOverheadMS,
	}
}

func (c *Config) model() *cycles.Model {
	if c.Model != nil {
		return c.Model
	}
	return cycles.New(cycles.DefaultClockHz, 0, 0)
}

// Fingerprint returns a canonical string covering every field that
// influences Prepare and simulation, resolving the cycle model to its
// values (two configs with distinct but value-equal *cycles.Model
// fingerprint identically). It is the configuration half of the
// memoization key used by Cache.
func (c *Config) Fingerprint() string {
	m := c.model()
	return fmt.Sprintf("disk{%+v} nd=%d unit=%d cache=%d model{%g,%g,%g,%d} tm=%g nopre=%t nocache=%t distseek=%t faults{%s seed=%d}",
		c.Disk, c.NumDisks, c.UnitBytes, c.CacheUnits,
		m.ClockHz, m.NoisePct, m.BiasPct, m.Seed,
		c.PowerCallOverheadMS, c.DisablePreactivation, c.NoCache, c.DistanceAwareSeek,
		faults.FormatSpec(c.Faults), c.FaultSeed)
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if c.NumDisks <= 0 {
		return fmt.Errorf("core: non-positive disk count")
	}
	if c.UnitBytes <= 0 || c.UnitBytes%layout.BlockSize != 0 {
		return fmt.Errorf("core: bad stripe unit %d", c.UnitBytes)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// faultPlan derives the configuration's fault plan (nil when fault
// injection is disabled).
func (c *Config) faultPlan() (*faults.Plan, error) {
	if !c.Faults.Enabled() {
		return nil, nil
	}
	return faults.New(c.FaultSeed, c.NumDisks, c.Faults)
}

// Instance is a program prepared on a disk subsystem: placed,
// analyzed, and ready to run under any scheme.
//
// An Instance is safe for concurrent use: the derived artifacts
// (base trace, instrumented traces) are built once under a lock, and
// Run is re-entrant — all per-run mutable state (the disk state
// machine, the policy) is freshly allocated inside sim.Run, so any
// number of schemes can be simulated on one Instance at once.
type Instance struct {
	Name    string
	Program *ir.Program
	Sub     *layout.Subsystem
	Sites   []tracegen.Site
	Cfg     Config
	// Obs, when non-nil, receives metrics from every simulation run
	// on this instance. Set it before the first Run (Cache sets it
	// automatically from its own collector). It is deliberately not
	// part of the memoization key: collectors observe runs, they do
	// not change them.
	Obs *obs.Collector
	// Events, when non-nil, receives decision-provenance events from
	// every simulation run on this instance. Like Obs it is set before
	// the first Run and excluded from the memoization key: the event
	// log observes runs without changing them (sim.Run guarantees
	// bit-identical results with and without a log attached).
	Events *events.Log

	// faultPlan is the derived fault schedule (nil when injection is
	// disabled); it is immutable and shared by every run.
	faultPlan *faults.Plan

	mu        sync.Mutex // guards the lazy caches below
	baseTrace *trace.Trace
	instr     map[insert.Mode]*instrumented
	compiled  map[*trace.Trace]*trace.Compiled
}

type instrumented struct {
	tr   *trace.Trace
	plan *insert.Plan
}

// Prepare places the program's arrays (staggered default striping,
// with per-array overrides from a layout-aware transformation),
// extracts the request sites, and returns a runnable instance.
func Prepare(name string, p *ir.Program, cfg Config, overrides map[string]layout.Striping) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sub, err := layout.NewSubsystem(cfg.NumDisks)
	if err != nil {
		return nil, err
	}
	plan, err := cfg.faultPlan()
	if err != nil {
		return nil, err
	}
	for i, a := range p.Arrays {
		st := layout.Striping{StartDisk: i % cfg.NumDisks, Factor: cfg.NumDisks, UnitBytes: cfg.UnitBytes}
		if o, ok := overrides[a.Name]; ok {
			st = o
		}
		if err := sub.Place(a.Name, a.SizeBytes(), st); err != nil {
			return nil, err
		}
	}
	var sites []tracegen.Site
	if cfg.NoCache {
		sites, err = tracegen.SitesNoCache(p, sub)
	} else {
		sites, err = tracegen.Sites(p, sub, cfg.CacheUnits)
	}
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name: name, Program: p, Sub: sub, Sites: sites, Cfg: cfg,
		faultPlan: plan,
		instr:     make(map[insert.Mode]*instrumented),
	}, nil
}

// BaseTrace returns (and caches) the uninstrumented runtime trace.
// The returned trace is shared and must be treated as read-only
// (sim.Run never mutates its input).
func (in *Instance) BaseTrace() *trace.Trace {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.baseTrace == nil {
		p := in.Cfg.Disk
		in.baseTrace = tracegen.FromSites(in.Name, in.Cfg.NumDisks, in.Sites, tracegen.Options{
			Model:            in.Cfg.model(),
			NominalServiceMS: func(b int64) float64 { return p.ServiceTimeMS(p.MaxRPM, b) },
		})
	}
	return in.baseTrace
}

// Instrumented returns (and caches) the compiler-instrumented trace
// and plan for the given mode. Like BaseTrace, the results are
// shared and read-only.
func (in *Instance) Instrumented(mode insert.Mode) (*trace.Trace, *insert.Plan, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if got, ok := in.instr[mode]; ok {
		return got.tr, got.plan, nil
	}
	tr, plan, err := insert.Instrument(in.Name, in.Cfg.NumDisks, in.Sites, insert.Options{
		Mode: mode, Disk: in.Cfg.Disk, Model: in.Cfg.model(),
		DisablePreactivation: in.Cfg.DisablePreactivation,
	})
	if err != nil {
		return nil, nil, err
	}
	in.instr[mode] = &instrumented{tr: tr, plan: plan}
	return tr, plan, nil
}

// Compiled returns (and caches) the run-length compiled form of a
// trace owned by this instance (the base trace or an instrumented
// one), so every scheme sharing a trace shares its compiled form.
func (in *Instance) Compiled(tr *trace.Trace) *trace.Compiled {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.compiled == nil {
		in.compiled = make(map[*trace.Trace]*trace.Compiled)
	}
	c, ok := in.compiled[tr]
	if !ok {
		c = trace.Compile(tr)
		in.compiled[tr] = c
	}
	return c
}

// Run simulates the instance under the given scheme.
func (in *Instance) Run(s Scheme) (*sim.Result, error) {
	cfg := sim.Config{
		Disk:                in.Cfg.Disk,
		PowerCallOverheadMS: in.Cfg.PowerCallOverheadMS,
		DistanceAwareSeek:   in.Cfg.DistanceAwareSeek,
		Obs:                 in.Obs,
		Events:              in.Events,
		SchemeLabel:         string(s),
		Faults:              in.faultPlan,
		Audit:               in.Cfg.Audit,
	}
	tr := in.BaseTrace()
	switch s {
	case Base:
		cfg.Policy = policy.NewBase()
	case TPM:
		cfg.Policy = policy.NewTPM(in.Cfg.Disk, 0)
	case ITPM:
		cfg.Policy = policy.NewITPM(in.Cfg.Disk)
	case DRPM:
		cfg.Policy = policy.NewDRPM(in.Cfg.Disk, in.Cfg.NumDisks)
	case IDRPM:
		cfg.Policy = policy.NewIDRPM(in.Cfg.Disk)
	case CMTPM, CMDRPM:
		mode := insert.ModeTPM
		if s == CMDRPM {
			mode = insert.ModeDRPM
		}
		itr, _, err := in.Instrumented(mode)
		if err != nil {
			return nil, err
		}
		tr = itr
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", s)
	}
	if in.Cfg.DisableBatch {
		cfg.DisableBatch = true
	} else {
		cfg.Compiled = in.Compiled(tr)
	}
	res, err := sim.Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	res.Scheme = string(s)
	res.Program = in.Name
	return res, nil
}

// RunOpen replays the instance's trace in open-loop (arrival-driven,
// per-disk FIFO) mode under a reactive or oracle scheme. The
// compiler-managed schemes are closed-loop by construction (their
// power calls are program-order events), so they are rejected here.
func (in *Instance) RunOpen(s Scheme) (*sim.Result, error) {
	cfg := sim.Config{
		Disk:              in.Cfg.Disk,
		DistanceAwareSeek: in.Cfg.DistanceAwareSeek,
		Obs:               in.Obs,
		Events:            in.Events,
		SchemeLabel:       string(s) + "/open",
		Faults:            in.faultPlan,
		Audit:             in.Cfg.Audit,
	}
	switch s {
	case Base:
		cfg.Policy = policy.NewBase()
	case TPM:
		cfg.Policy = policy.NewTPM(in.Cfg.Disk, 0)
	case ITPM:
		cfg.Policy = policy.NewITPM(in.Cfg.Disk)
	case DRPM:
		cfg.Policy = policy.NewDRPM(in.Cfg.Disk, in.Cfg.NumDisks)
	case IDRPM:
		cfg.Policy = policy.NewIDRPM(in.Cfg.Disk)
	default:
		return nil, fmt.Errorf("core: open-loop replay supports reactive/oracle schemes, not %q", s)
	}
	res, err := sim.RunOpenLoop(in.BaseTrace(), cfg)
	if err != nil {
		return nil, err
	}
	res.Program = in.Name
	return res, nil
}

// Mispredictions runs the Table 3 analysis: the CMDRPM plan's speed
// choices versus the oracle-optimal choices for the actual idle
// periods of a base run.
func (in *Instance) Mispredictions() (oracle.MispredictStats, error) {
	_, plan, err := in.Instrumented(insert.ModeDRPM)
	if err != nil {
		return oracle.MispredictStats{}, err
	}
	base, err := in.Run(Base)
	if err != nil {
		return oracle.MispredictStats{}, err
	}
	return oracle.Mispredictions(plan, base.Idles, in.Cfg.Disk)
}

// EstimateEnergy returns the compiler's energy prediction for the
// given scheme (Base, CMTPM, or CMDRPM) on the predicted timeline.
func (in *Instance) EstimateEnergy(s Scheme) (float64, error) {
	switch s {
	case Base:
		_, plan, err := in.Instrumented(insert.ModeDRPM)
		if err != nil {
			return 0, err
		}
		return plan.EstimateBaseEnergyJ(in.Cfg.Disk, in.Sites), nil
	case CMTPM, CMDRPM:
		mode := insert.ModeTPM
		if s == CMDRPM {
			mode = insert.ModeDRPM
		}
		_, plan, err := in.Instrumented(mode)
		if err != nil {
			return 0, err
		}
		return plan.EstimateEnergyJ(in.Cfg.Disk, in.Sites), nil
	default:
		return 0, fmt.Errorf("core: no compiler estimate for scheme %q", s)
	}
}

// SelectScheme performs the paper's strategy selection: the compiler
// instruments the program for both TPM and DRPM, estimates each
// plan's energy, and returns the cheaper compiler-managed scheme
// together with its predicted energy.
func (in *Instance) SelectScheme() (Scheme, float64, error) {
	tpm, err := in.EstimateEnergy(CMTPM)
	if err != nil {
		return "", 0, err
	}
	drpm, err := in.EstimateEnergy(CMDRPM)
	if err != nil {
		return "", 0, err
	}
	if tpm < drpm {
		return CMTPM, tpm, nil
	}
	return CMDRPM, drpm, nil
}

// NestRequests returns the per-nest request counts, the disk-energy
// cost metric handed to the layout-aware tiler.
func (in *Instance) NestRequests() []float64 {
	out := make([]float64, len(in.Program.Nests))
	for _, s := range in.Sites {
		out[s.Nest]++
	}
	return out
}

// DAP builds the disk access pattern of the instance on the
// compiler's predicted timeline.
func (in *Instance) DAP(coalesceMS float64) *dap.DAP {
	p := in.Cfg.Disk
	svc := func(b int64) float64 { return p.ServiceTimeMS(p.MaxRPM, b) }
	issue := tracegen.PredictedIssueMS(in.Sites, in.Cfg.model(), svc)
	return dap.Build(in.Sites, issue, in.Cfg.NumDisks, svc, coalesceMS)
}

// ApplyVersion applies a Section 6 code/layout version to a program.
// It returns the transformed program, the per-array striping
// overrides the transformation determined (nil for the oblivious
// versions), and whether the transformation applied at all — the
// compiler leaves a program unchanged when it finds nothing to
// transform (no fissionable nests; no tileable nest; layouts already
// conforming), which is exactly how wupwise/galgel behave under LF
// and swim/mgrid/galgel under TL+DL in the paper.
func ApplyVersion(p *ir.Program, v Version, cfg Config, nestCost []float64) (*ir.Program, map[string]layout.Striping, bool, error) {
	switch v {
	case VOrig:
		return p, nil, true, nil
	case VLF:
		if !xform.Fissionable(p) {
			return p, nil, false, nil
		}
		return xform.Fission(p), nil, true, nil
	case VLFDL:
		if !xform.Fissionable(p) {
			return p, nil, false, nil
		}
		fp := xform.ClusterByGroup(xform.Fission(p))
		groups := xform.ArrayGroups(fp)
		if len(groups) < 2 || len(groups) > cfg.NumDisks {
			// Nothing to separate, or not enough disks to give every
			// group a disjoint set: the compiler declines.
			return p, nil, false, nil
		}
		st, err := xform.AssignGroupDisks(groups, cfg.NumDisks, cfg.UnitBytes)
		if err != nil {
			return nil, nil, false, err
		}
		return fp, st, true, nil
	case VTL:
		// Layout-oblivious tiling targets the compute-costliest nest
		// with conventional row-panel tiles (a CPU-cache oriented
		// tiler knows nothing of disk layouts).
		res, err := xform.Tile(p, xform.TileOptions{
			UnitBytes: cfg.UnitBytes, NumDisks: cfg.NumDisks, LayoutAware: false,
			PanelTiles: true,
		})
		if err != nil {
			return p, nil, false, nil
		}
		return res.Program, nil, true, nil
	case VTLDL:
		res, err := xform.Tile(p, xform.TileOptions{
			UnitBytes: cfg.UnitBytes, NumDisks: cfg.NumDisks, LayoutAware: true,
			NestCost: nestCost,
		})
		if err != nil {
			return p, nil, false, nil
		}
		if len(res.Transposed) == 0 {
			// The access patterns already conform to the layouts:
			// the transformation has nothing to repair.
			return p, nil, false, nil
		}
		return res.Program, res.Stripings, true, nil
	case VIC:
		ip, changed := xform.Interchange(p)
		if len(changed) == 0 {
			return p, nil, false, nil
		}
		return ip, nil, true, nil
	default:
		return nil, nil, false, fmt.Errorf("core: unknown version %q", v)
	}
}

// PrepareVersion applies the version to the program and prepares the
// result. The returned bool reports whether the transformation
// actually applied. nestCost may be nil; it is computed from the
// original program when the version needs it.
func PrepareVersion(name string, p *ir.Program, v Version, cfg Config) (*Instance, bool, error) {
	var nestCost []float64
	if v == VTLDL {
		orig, err := Prepare(name, p, cfg, nil)
		if err != nil {
			return nil, false, err
		}
		nestCost = orig.NestRequests()
	}
	tp, overrides, applied, err := ApplyVersion(p, v, cfg, nestCost)
	if err != nil {
		return nil, false, err
	}
	in, err := Prepare(name+"/"+string(v), tp, cfg, overrides)
	if err != nil {
		return nil, false, err
	}
	return in, applied, nil
}
