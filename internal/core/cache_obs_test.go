package core

import (
	"sync"
	"testing"

	"sdpm/internal/obs"
	"sdpm/internal/workloads"
)

func TestCacheCountsHitsAndMisses(t *testing.T) {
	b, err := workloads.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.Obs = obs.New()
	cfg := DefaultConfig()
	cfg.Model = b.Model()

	in, err := c.Prepare(b.Name, b.Program, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.Obs != c.Obs {
		t.Error("prepared instance not wired to the cache's collector")
	}
	if _, err := c.Prepare(b.Name, b.Program, cfg, nil); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.UnitBytes *= 2
	if _, err := c.Prepare(b.Name, b.Program, cfg2, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.PrepareVersion(b.Name, b.Program, AllVersions()[0], cfg); err != nil {
		t.Fatal(err)
	}

	hits, misses, waits := c.Obs.CacheStats()
	if misses != 3 { // two Prepare keys + one PrepareVersion key
		t.Errorf("misses = %d, want 3", misses)
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if waits != 0 {
		t.Errorf("waits = %d, want 0 (no concurrency here)", waits)
	}
}

func TestCacheCountsAccountForEveryLookup(t *testing.T) {
	b, err := workloads.ByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.Obs = obs.New()
	cfg := DefaultConfig()
	cfg.Model = b.Model()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Prepare(b.Name, b.Program, cfg, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	hits, misses, waits := c.Obs.CacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", misses)
	}
	if hits+misses+waits != n {
		t.Errorf("hits %d + misses %d + waits %d != %d lookups", hits, misses, waits, n)
	}
}
