package core

import (
	"math"
	"math/rand"
	"testing"

	"sdpm/internal/progen"
)

// TestPipelineInvariantsGenerated pushes randomly generated programs
// through the complete pipeline — placement, analysis,
// instrumentation, and simulation under every scheme — and checks
// the invariants that must hold for any program:
//
//   - all traces validate;
//   - oracle schemes never use more energy than base and never
//     change the execution time;
//   - compiler-managed schemes never exceed base energy by more than
//     the power-call overhead, and their request sequence matches
//     base;
//   - the compiler's energy estimates stay finite and positive.
func TestPipelineInvariantsGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	rng := rand.New(rand.NewSource(1234))
	opts := progen.DefaultOptions()
	opts.MaxDim = 96
	trials := 0
	for trials < 40 {
		p := progen.MustGenerate(rng, opts)
		cfg := DefaultConfig()
		cfg.NumDisks = 1 + rng.Intn(8)
		cfg.UnitBytes = 512 << rng.Intn(4)
		cfg.CacheUnits = 4 + rng.Intn(16)
		in, err := Prepare(p.Name, p, cfg, nil)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		if len(in.Sites) == 0 {
			continue // degenerate: everything cached
		}
		trials++

		if err := in.BaseTrace().Validate(); err != nil {
			t.Fatalf("base trace invalid: %v", err)
		}
		base, err := in.Run(Base)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range AllSchemes()[1:] {
			res, err := in.Run(s)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, s, err)
			}
			if res.EnergyJ <= 0 || math.IsNaN(res.EnergyJ) || math.IsInf(res.EnergyJ, 0) {
				t.Fatalf("%s/%s: bad energy %v", p.Name, s, res.EnergyJ)
			}
			switch s {
			case ITPM, IDRPM:
				if res.EnergyJ > base.EnergyJ+1e-6 {
					t.Fatalf("%s/%s: oracle energy %.3f above base %.3f", p.Name, s, res.EnergyJ, base.EnergyJ)
				}
				if math.Abs(res.ExecMS-base.ExecMS) > 1e-6 {
					t.Fatalf("%s/%s: oracle changed exec time", p.Name, s)
				}
			case CMTPM, CMDRPM:
				if res.Requests != base.Requests {
					t.Fatalf("%s/%s: request count changed: %d vs %d", p.Name, s, res.Requests, base.Requests)
				}
				// Allow the call overheads and rare late
				// pre-activations, but never a large regression.
				if res.EnergyJ > base.EnergyJ*1.02+1 {
					t.Fatalf("%s/%s: energy %.3f above base %.3f", p.Name, s, res.EnergyJ, base.EnergyJ)
				}
			}
		}
		for _, s := range []Scheme{Base, CMTPM, CMDRPM} {
			est, err := in.EstimateEnergy(s)
			if err != nil {
				t.Fatal(err)
			}
			if est <= 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("%s/%s: bad estimate %v", p.Name, s, est)
			}
		}
	}
}

// TestTransformInvariantsGenerated applies every version to random
// programs: transformed programs must validate, preserve total
// compute, and run under CMDRPM without violating the base-energy
// bound.
func TestTransformInvariantsGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 30; trial++ {
		p := progen.MustGenerate(rng, progen.DefaultOptions())
		cfg := DefaultConfig()
		cfg.NumDisks = 2 + rng.Intn(7)
		for _, v := range ExtendedVersions() {
			in, _, err := PrepareVersion(p.Name, p, v, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v, err)
			}
			if err := in.Program.Validate(); err != nil {
				t.Fatalf("trial %d %s: transformed program invalid: %v", trial, v, err)
			}
			if in.Program.TotalCost() != p.TotalCost() {
				t.Fatalf("trial %d %s: compute changed", trial, v)
			}
			if len(in.Sites) == 0 {
				continue
			}
			base, err := in.Run(Base)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v, err)
			}
			cm, err := in.Run(CMDRPM)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v, err)
			}
			if cm.EnergyJ > base.EnergyJ*1.02+1 {
				t.Fatalf("trial %d %s: CMDRPM energy above base", trial, v)
			}
		}
	}
}
