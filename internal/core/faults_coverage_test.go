package core

import (
	"testing"

	"sdpm/internal/faults"
	"sdpm/internal/workloads"
)

// faultCoverageBenches and faultCoverageSchemes span the fault-injection
// coverage matrix beyond the swim LF+DL sweep of the experiments layer:
// three benchmarks with distinct access shapes under the reactive DRPM
// scheme and both oracle schemes.
var faultCoverageBenches = []string{"swim", "mesa", "galgel"}

var faultCoverageSchemes = []Scheme{DRPM, ITPM, IDRPM}

func coverageInstance(t *testing.T, benchName string, cfg Config) *Instance {
	t.Helper()
	b, err := workloads.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Prepare(b.Name, b.Program, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestFaultFreeByteIdentity: attaching a fault plan whose probabilities
// are negligible (but non-zero, so the plan-driven code paths run) must
// leave every figure bit-identical to the fault-free run, for every
// (benchmark, scheme) pair in the coverage matrix. This pins down the
// invariant the fault-free experiments rely on: the injection machinery
// itself costs nothing unless a fault actually fires.
func TestFaultFreeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault coverage matrix is slow")
	}
	for _, bench := range faultCoverageBenches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			clean := coverageInstance(t, bench, DefaultConfig())
			cfg := DefaultConfig()
			// Enabled (SpinUpFailProb > 0) so a plan is derived and the
			// cascade path executes, but far too small for any seeded
			// draw to ever fire.
			cfg.Faults = faults.Config{SpinUpFailProb: 1e-12}
			cfg.FaultSeed = 99
			armed := coverageInstance(t, bench, cfg)
			for _, sc := range faultCoverageSchemes {
				want, err := clean.Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := armed.Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if got.EnergyJ != want.EnergyJ || got.ExecMS != want.ExecMS || got.TotalWaitMS != want.TotalWaitMS {
					t.Errorf("%s/%s: never-firing plan changed the run: (%v,%v,%v) vs (%v,%v,%v)",
						bench, sc,
						got.EnergyJ, got.ExecMS, got.TotalWaitMS,
						want.EnergyJ, want.ExecMS, want.TotalWaitMS)
				}
				for d, st := range got.Disks {
					if st.SpinUpFailures != 0 || st.RemapHits != 0 || st.DegradedHits != 0 {
						t.Errorf("%s/%s disk %d: phantom faults: %d failures, %d remaps, %d degraded",
							bench, sc, d, st.SpinUpFailures, st.RemapHits, st.DegradedHits)
					}
				}
			}
		})
	}
}

// TestFaultEnergyAccountingAudited: under the moderate fault preset
// every (benchmark, scheme) pair runs with the conservation audit on —
// so the per-disk energy breakdown, the timeline power integral, and
// the fault counters are all verified to be exact (fault energy charged
// exactly once, never dropped or doubled) — and two identical runs
// stay bit-identical.
func TestFaultEnergyAccountingAudited(t *testing.T) {
	if testing.Short() {
		t.Skip("fault coverage matrix is slow")
	}
	fc, ok := faults.Preset("moderate")
	if !ok {
		t.Fatal("moderate preset missing")
	}
	for _, bench := range faultCoverageBenches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Faults = fc
			cfg.FaultSeed = 42
			cfg.Audit = true
			in := coverageInstance(t, bench, cfg)
			for _, sc := range faultCoverageSchemes {
				a, err := in.Run(sc)
				if err != nil {
					t.Fatalf("%s/%s: audited faulted run failed: %v", bench, sc, err)
				}
				b, err := in.Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if a.EnergyJ != b.EnergyJ || a.ExecMS != b.ExecMS || a.TotalWaitMS != b.TotalWaitMS {
					t.Errorf("%s/%s: identical faulted runs diverged", bench, sc)
				}
				var sum float64
				for _, st := range a.Disks {
					sum += st.ActiveEnergyJ + st.IdleEnergyJ + st.StandbyEnergyJ + st.TransitionEnergyJ
				}
				if diff := sum - a.EnergyJ; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("%s/%s: energy breakdown sums to %g, reported %g", bench, sc, sum, a.EnergyJ)
				}
			}
		})
	}
}
