package core

import (
	"sync"
	"testing"

	"sdpm/internal/cycles"
	"sdpm/internal/workloads"
)

func TestCachePrepareSharesInstances(t *testing.T) {
	b, err := workloads.ByName("galgel")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	cfg := DefaultConfig()
	cfg.Model = b.Model()

	in1, err := c.Prepare(b.Name, b.Program, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A value-equal but distinct model must still hit.
	cfg2 := cfg
	cfg2.Model = b.Model()
	in2, err := c.Prepare(b.Name, b.Program, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in1 != in2 {
		t.Error("value-equal configs produced distinct instances")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}

	// Any simulation-relevant change must miss.
	cfg3 := cfg
	m := b.Model()
	m.BiasPct += 5
	cfg3.Model = m
	in3, err := c.Prepare(b.Name, b.Program, cfg3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in3 == in1 {
		t.Error("changed bias hit the cache")
	}
	cfg4 := cfg
	cfg4.UnitBytes *= 2
	if in4, err := c.Prepare(b.Name, b.Program, cfg4, nil); err != nil {
		t.Fatal(err)
	} else if in4 == in1 {
		t.Error("changed stripe unit hit the cache")
	}
}

func TestCachePrepareConcurrentSingleflight(t *testing.T) {
	b, err := workloads.ByName("mesa")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	cfg := DefaultConfig()
	cfg.Model = b.Model()

	const n = 16
	got := make([]*Instance, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in, err := c.Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = in
			// Exercise the shared lazy artifacts concurrently too.
			_ = in.BaseTrace()
			if _, err := in.Run(AllSchemes()[i%len(AllSchemes())]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a distinct instance", i)
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCachePrepareVersionMatchesDirect(t *testing.T) {
	for _, name := range []string{"swim", "wupwise"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Model = b.Model()
		c := NewCache()
		for _, v := range AllVersions() {
			cin, capplied, err := c.PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			din, dapplied, err := PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if capplied != dapplied {
				t.Errorf("%s/%s: applied %v vs %v", name, v, capplied, dapplied)
			}
			cres, err := cin.Run(CMDRPM)
			if err != nil {
				t.Fatal(err)
			}
			dres, err := din.Run(CMDRPM)
			if err != nil {
				t.Fatal(err)
			}
			if cres.EnergyJ != dres.EnergyJ || cres.ExecMS != dres.ExecMS {
				t.Errorf("%s/%s: cached run differs: %g/%g vs %g/%g",
					name, v, cres.EnergyJ, cres.ExecMS, dres.EnergyJ, dres.ExecMS)
			}
			// Second lookup shares.
			cin2, _, err := c.PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if cin2 != cin {
				t.Errorf("%s/%s: repeat lookup missed", name, v)
			}
		}
	}
}

func TestConfigFingerprintCoversModel(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical configs fingerprint differently")
	}
	b.Model = cycles.New(cycles.DefaultClockHz, 7, 3)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("noise model change not fingerprinted")
	}
	c := DefaultConfig()
	c.Model = cycles.New(cycles.DefaultClockHz, 0, 0)
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("explicit default model fingerprints differently from nil")
	}
	d := DefaultConfig()
	d.DisablePreactivation = true
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("preactivation flag not fingerprinted")
	}
}
