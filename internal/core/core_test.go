package core

import (
	"math"
	"strings"
	"testing"

	"sdpm/internal/insert"
	"sdpm/internal/workloads"
)

func prepBench(t *testing.T, name string) *Instance {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Model = b.Model()
	cfg.CacheUnits = b.CacheUnits
	in, err := Prepare(name, b.Program, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSchemeOrderingGalgel(t *testing.T) {
	in := prepBench(t, "galgel")
	res := map[Scheme]float64{}
	exec := map[Scheme]float64{}
	for _, s := range AllSchemes() {
		r, err := in.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		res[s] = r.EnergyJ
		exec[s] = r.ExecMS
	}
	// Figure 3 ordering on the untransformed codes:
	// TPM ~ ITPM ~ Base; IDRPM < CMDRPM < DRPM < Base.
	if math.Abs(res[TPM]-res[Base]) > 0.02*res[Base] {
		t.Errorf("TPM %f vs base %f", res[TPM], res[Base])
	}
	if !(res[IDRPM] < res[CMDRPM] && res[CMDRPM] < res[DRPM] && res[DRPM] < 0.95*res[Base]) {
		t.Errorf("energy ordering violated: base=%.0f drpm=%.0f cmdrpm=%.0f idrpm=%.0f",
			res[Base], res[DRPM], res[CMDRPM], res[IDRPM])
	}
	// Figure 4: DRPM pays a time penalty; CMDRPM and the oracles do
	// not (beyond power-call overhead).
	if exec[DRPM] < 1.02*exec[Base] {
		t.Errorf("DRPM penalty missing: %.0f vs %.0f", exec[DRPM], exec[Base])
	}
	if exec[CMDRPM] > 1.03*exec[Base] {
		t.Errorf("CMDRPM penalty too high: %.0f vs %.0f", exec[CMDRPM], exec[Base])
	}
	if math.Abs(exec[IDRPM]-exec[Base]) > 1e-6*exec[Base] {
		t.Errorf("IDRPM changed exec time")
	}
}

func TestCMDRPMNearIdealAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix run is slow")
	}
	for _, name := range workloads.Names() {
		in := prepBench(t, name)
		base, err := in.Run(Base)
		if err != nil {
			t.Fatal(err)
		}
		id, err := in.Run(IDRPM)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := in.Run(CMDRPM)
		if err != nil {
			t.Fatal(err)
		}
		idSave := 1 - id.EnergyJ/base.EnergyJ
		cmSave := 1 - cm.EnergyJ/base.EnergyJ
		if idSave < 0.3 {
			t.Errorf("%s: IDRPM saves only %.1f%%", name, idSave*100)
		}
		if cmSave < idSave-0.12 {
			t.Errorf("%s: CMDRPM (%.1f%%) too far from IDRPM (%.1f%%)", name, cmSave*100, idSave*100)
		}
		t.Logf("%-8s IDRPM %.1f%%  CMDRPM %.1f%%  CMDRPM time %.3fx",
			name, idSave*100, cmSave*100, cm.ExecMS/base.ExecMS)
	}
}

func TestMispredictionsInPaperBand(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	// Table 3 reports 5.14 .. 27.35%; require every benchmark in a
	// generous band around it.
	for _, name := range workloads.Names() {
		in := prepBench(t, name)
		st, err := in.Mispredictions()
		if err != nil {
			t.Fatal(err)
		}
		if st.Pct < 1 || st.Pct > 45 {
			t.Errorf("%s: misprediction %.2f%% outside plausible band", name, st.Pct)
		}
		t.Logf("%-8s mispredicted %.2f%% of %d gaps", name, st.Pct, st.TotalGaps)
	}
}

func TestApplyVersionSemantics(t *testing.T) {
	cfg := DefaultConfig()
	// Unfissionable programs: LF and LF+DL do not apply.
	g, _ := workloads.ByName("galgel")
	for _, v := range []Version{VLF, VLFDL} {
		tp, st, applied, err := ApplyVersion(g.Program, v, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if applied || tp != g.Program || st != nil {
			t.Errorf("galgel %s: applied=%v", v, applied)
		}
	}
	// Conforming programs: TL+DL does not apply.
	s, _ := workloads.ByName("swim")
	if _, _, applied, _ := ApplyVersion(s.Program, VTLDL, cfg, nil); applied {
		t.Error("swim TL+DL applied despite conforming accesses")
	}
	// Fissionable programs: LF applies and multiplies nests.
	tp, _, applied, err := ApplyVersion(s.Program, VLF, cfg, nil)
	if err != nil || !applied {
		t.Fatalf("swim LF: %v applied=%v", err, applied)
	}
	if len(tp.Nests) <= len(s.Program.Nests) {
		t.Error("swim LF did not split nests")
	}
	// LF+DL assigns multiple disjoint groups.
	_, st, applied, err := ApplyVersion(s.Program, VLFDL, cfg, nil)
	if err != nil || !applied || len(st) == 0 {
		t.Fatalf("swim LF+DL: %v", err)
	}
	factors := map[int]bool{}
	for _, v := range st {
		factors[v.StartDisk] = true
	}
	if len(factors) < 2 {
		t.Error("swim LF+DL used one disk range")
	}
	// Transposed programs: TL+DL applies.
	m, _ := workloads.ByName("mesa")
	inOrig, err := Prepare("mesa", m.Program, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tp, st, applied, err = ApplyVersion(m.Program, VTLDL, cfg, inOrig.NestRequests())
	if err != nil || !applied {
		t.Fatalf("mesa TL+DL: %v applied=%v", err, applied)
	}
	if tp.ArrayByName("tex").Block == nil {
		t.Error("mesa TL+DL did not block the texture")
	}
	if _, ok := st["tex"]; !ok {
		t.Error("mesa TL+DL missing tex striping")
	}
	// Unknown version.
	if _, _, _, err := ApplyVersion(s.Program, "bogus", cfg, nil); err == nil {
		t.Error("bogus version accepted")
	}
}

func TestPrepareVersionRuns(t *testing.T) {
	m, _ := workloads.ByName("mesa")
	cfg := DefaultConfig()
	cfg.Model = m.Model()
	in, applied, err := PrepareVersion("mesa", m.Program, VTLDL, cfg)
	if err != nil || !applied {
		t.Fatalf("PrepareVersion: %v", err)
	}
	if !strings.Contains(in.Name, "TL+DL") {
		t.Errorf("name = %q", in.Name)
	}
	// The transposed pass collapses: far fewer requests than the
	// original.
	orig, err := Prepare("mesa", m.Program, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Sites) >= len(orig.Sites) {
		t.Errorf("TL+DL did not reduce requests: %d vs %d", len(in.Sites), len(orig.Sites))
	}
}

func TestInstanceHelpers(t *testing.T) {
	in := prepBench(t, "galgel")
	if tr := in.BaseTrace(); tr != in.BaseTrace() {
		t.Error("BaseTrace not cached")
	}
	tr1, plan1, err := in.Instrumented(insert.ModeDRPM)
	if err != nil {
		t.Fatal(err)
	}
	tr2, plan2, _ := in.Instrumented(insert.ModeDRPM)
	if tr1 != tr2 || plan1 != plan2 {
		t.Error("Instrumented not cached")
	}
	nr := in.NestRequests()
	var tot float64
	for _, v := range nr {
		tot += v
	}
	if int(tot) != len(in.Sites) {
		t.Errorf("nest requests %v sum to %.0f, want %d", nr, tot, len(in.Sites))
	}
	d := in.DAP(0)
	if len(d.Disks) != in.Cfg.NumDisks {
		t.Error("DAP disk count")
	}
	if _, err := in.Run("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDisks = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero disks accepted")
	}
	cfg = DefaultConfig()
	cfg.UnitBytes = 1000
	if err := cfg.Validate(); err == nil {
		t.Error("unaligned unit accepted")
	}
	cfg = DefaultConfig()
	cfg.Disk.RPMStep = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad disk accepted")
	}
}

func TestEnergyEstimateTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	// The compiler's energy prediction must track the simulator
	// closely — it is the basis for strategy selection.
	for _, name := range workloads.Names() {
		in := prepBench(t, name)
		for _, s := range []Scheme{Base, CMDRPM} {
			est, err := in.EstimateEnergy(s)
			if err != nil {
				t.Fatal(err)
			}
			res, err := in.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			// The estimate ignores the pre-activation safety margin,
			// call overheads, and misprediction losses, so it runs a
			// few percent optimistic.
			ratio := est / res.EnergyJ
			if ratio < 0.85 || ratio > 1.1 {
				t.Errorf("%s/%s: estimate %.0f vs simulated %.0f (%.3f)", name, s, est, res.EnergyJ, ratio)
			}
		}
	}
}

func TestSelectScheme(t *testing.T) {
	in := prepBench(t, "galgel")
	s, predicted, err := in.SelectScheme()
	if err != nil {
		t.Fatal(err)
	}
	// On the untransformed workloads TPM cannot exploit the short
	// gaps, so the selector must pick CMDRPM.
	if s != CMDRPM {
		t.Errorf("selected %s", s)
	}
	tpmEst, _ := in.EstimateEnergy(CMTPM)
	if predicted > tpmEst {
		t.Errorf("selected scheme predicted %.0f > alternative %.0f", predicted, tpmEst)
	}
	if _, err := in.EstimateEnergy(DRPM); err == nil {
		t.Error("estimate for reactive scheme accepted")
	}
}
