package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sdpm/internal/ir"
	"sdpm/internal/layout"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
)

// Cache memoizes prepared instances so the expensive front half of
// the pipeline — compilation, access-pattern extraction, placement,
// base-trace generation — runs once per (workload, configuration)
// even when many schemes, experiments, or worker goroutines ask for
// it. All methods are safe for concurrent use, and concurrent
// requests for the same key run a single Prepare (the others block on
// it), so a parallel experiment grid never duplicates work.
//
// The memoization key is: the workload name, the identity of the IR
// program (pointer — programs are treated as immutable once built),
// the Config fingerprint (see Config.Fingerprint), and the layout
// overrides rendered in sorted order. Version preparation adds the
// version tag and memoizes the whole ApplyVersion+Prepare pair, which
// is deterministic in its inputs.
type Cache struct {
	// Obs, when non-nil, receives hit/miss/singleflight-wait counts
	// from every lookup and is propagated onto each prepared
	// Instance (so simulation runs on cached instances are observed
	// too). Set it before first use.
	Obs *obs.Collector
	// Events, when non-nil, is propagated onto each prepared Instance
	// the same way (decision-provenance events from runs on cached
	// instances land in one shared log). Set it before first use.
	Events *events.Log

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	// done flips after once completes; a caller that finds the entry
	// neither done nor runnable blocked on a concurrent preparation
	// (the singleflight-wait case in the metrics).
	done atomic.Bool
	// prog pins the keyed program so its address cannot be reused by
	// the allocator while the entry is alive.
	prog    *ir.Program
	in      *Instance
	applied bool
	err     error
}

// NewCache returns an empty instance cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// entry returns (creating if needed) the entry for a key.
func (c *Cache) entry(key string, prog *ir.Program) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{prog: prog}
		c.entries[key] = e
	}
	return e
}

// Len reports the number of memoized preparations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// overridesKey renders layout overrides canonically (sorted by array).
func overridesKey(overrides map[string]layout.Striping) string {
	if len(overrides) == 0 {
		return ""
	}
	names := make([]string, 0, len(overrides))
	for n := range overrides {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%+v;", n, overrides[n])
	}
	return b.String()
}

// Prepare is a memoizing core.Prepare: the first call for a key does
// the work, every later (or concurrent) call returns the shared
// Instance. Callers must not mutate the returned Instance's fields;
// its Run and derived-artifact methods are concurrency-safe.
func (c *Cache) Prepare(name string, p *ir.Program, cfg Config, overrides map[string]layout.Striping) (*Instance, error) {
	key := fmt.Sprintf("p|%s|%p|%s|%s", name, p, cfg.Fingerprint(), overridesKey(overrides))
	e := c.entry(key, p)
	wasDone := e.done.Load()
	ran := false
	e.once.Do(func() {
		ran = true
		e.in, e.err = Prepare(name, p, cfg, overrides)
		if e.in != nil {
			e.in.Obs = c.Obs
			e.in.Events = c.Events
		}
		e.done.Store(true)
	})
	c.countLookup(ran, wasDone)
	return e.in, e.err
}

// countLookup classifies one lookup for the metrics: the caller
// either did the preparation (miss), found it already memoized
// (hit), or blocked on another goroutine's in-flight preparation
// (singleflight wait).
func (c *Cache) countLookup(ran, wasDone bool) {
	if c.Obs == nil {
		return
	}
	switch {
	case ran:
		c.Obs.CountCacheMiss()
	case wasDone:
		c.Obs.CountCacheHit()
	default:
		c.Obs.CountCacheWait()
	}
}

// PrepareVersion is a memoizing core.PrepareVersion: the code/layout
// transformation and the preparation of its result are both shared.
// The bool reports whether the transformation applied.
func (c *Cache) PrepareVersion(name string, p *ir.Program, v Version, cfg Config) (*Instance, bool, error) {
	key := fmt.Sprintf("v|%s|%p|%s|%s", name, p, v, cfg.Fingerprint())
	e := c.entry(key, p)
	wasDone := e.done.Load()
	ran := false
	e.once.Do(func() {
		ran = true
		defer e.done.Store(true)
		var nestCost []float64
		if v == VTLDL {
			// The layout-aware tiler needs the original program's
			// per-nest request counts; share that preparation too.
			orig, err := c.Prepare(name, p, cfg, nil)
			if err != nil {
				e.err = err
				return
			}
			nestCost = orig.NestRequests()
		}
		tp, overrides, applied, err := ApplyVersion(p, v, cfg, nestCost)
		if err != nil {
			e.err = err
			return
		}
		e.in, e.err = Prepare(name+"/"+string(v), tp, cfg, overrides)
		if e.in != nil {
			e.in.Obs = c.Obs
			e.in.Events = c.Events
		}
		e.applied = applied
	})
	c.countLookup(ran, wasDone)
	return e.in, e.applied, e.err
}
