package cycles

import (
	"math"
	"testing"
)

func TestMeanMS(t *testing.T) {
	m := New(750e6, 0, 1)
	// 750k cycles at 750MHz = 1ms.
	if got := m.MeanMS(750000); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("MeanMS = %g, want 1", got)
	}
	if got := m.MeanMS(0); got != 0 {
		t.Errorf("MeanMS(0) = %g", got)
	}
}

func TestCyclesForMSRoundTrip(t *testing.T) {
	m := New(750e6, 0, 1)
	for _, ms := range []float64{0.5, 1, 3.44, 10} {
		cyc := m.CyclesForMS(ms)
		if got := m.MeanMS(cyc); math.Abs(got-ms) > 1e-6 {
			t.Errorf("round trip %vms -> %d cycles -> %vms", ms, cyc, got)
		}
	}
}

func TestZeroNoiseIsExact(t *testing.T) {
	m := New(750e6, 0, 7)
	for step := uint64(0); step < 100; step++ {
		if m.JitterFactor(step) != 1 {
			t.Fatal("zero noise jittered")
		}
		if m.ActualMS(1000, step) != m.MeanMS(1000) {
			t.Fatal("actual != mean at zero noise")
		}
	}
}

func TestJitterBoundedAndCentered(t *testing.T) {
	m := New(750e6, 20, 12345)
	var sum float64
	const n = 20000
	for step := uint64(0); step < n; step++ {
		f := m.JitterFactor(step)
		if f < 0.8-1e-9 || f > 1.2+1e-9 {
			t.Fatalf("jitter %g out of [0.8, 1.2]", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("jitter mean %g not centered on 1", mean)
	}
}

func TestJitterDeterministic(t *testing.T) {
	a := New(750e6, 25, 9)
	b := New(750e6, 25, 9)
	for step := uint64(0); step < 50; step++ {
		if a.JitterFactor(step) != b.JitterFactor(step) {
			t.Fatal("same seed diverged")
		}
	}
	c := New(750e6, 25, 10)
	same := true
	for step := uint64(0); step < 50; step++ {
		if a.JitterFactor(step) != c.JitterFactor(step) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestDefaults(t *testing.T) {
	m := New(0, -5, 1)
	if m.ClockHz != DefaultClockHz {
		t.Errorf("ClockHz default = %g", m.ClockHz)
	}
	if m.NoisePct != 0 {
		t.Errorf("NoisePct = %g", m.NoisePct)
	}
}

func TestNestBiasBoundedDeterministic(t *testing.T) {
	m := New(750e6, 0, 11)
	m.BiasPct = 25
	for nest := 0; nest < 40; nest++ {
		b := m.NestBias(nest)
		if b < 0.75-1e-9 || b > 1.25+1e-9 {
			t.Fatalf("bias %g out of range", b)
		}
		if b != m.NestBias(nest) {
			t.Fatal("bias not deterministic")
		}
	}
	// Different nests get different biases (at least some).
	if m.NestBias(0) == m.NestBias(1) && m.NestBias(1) == m.NestBias(2) {
		t.Error("all nest biases identical")
	}
	m.BiasPct = 0
	if m.NestBias(3) != 1 {
		t.Error("zero bias not identity")
	}
}

func TestActualMSIn(t *testing.T) {
	m := New(750e6, 0, 5)
	m.BiasPct = 20
	got := m.ActualMSIn(750000, 0, 7)
	want := m.MeanMS(750000) * m.NestBias(7)
	if got != want {
		t.Errorf("ActualMSIn = %g, want %g", got, want)
	}
}
