// Package cycles converts loop-iteration compute costs into wall
// time, modelling the paper's cycle-estimation methodology: the
// compiler's estimates come from measured mean per-iteration times
// (gethrtime on a 750 MHz UltraSPARC-III), while the actual
// per-iteration times at run time vary around that mean. The gap
// between estimate and actual is what causes the compiler-managed
// schemes to occasionally mispredict the optimal disk speed
// (Table 3 of the paper).
package cycles

// DefaultClockHz is the clock rate of the paper's measurement
// machine, a SUN Blade1000 (UltraSPARC-III at 750 MHz).
const DefaultClockHz = 750e6

// Model converts compute-cycle counts to milliseconds and produces
// deterministic per-step execution-time jitter. Two error sources
// separate the compiler's estimates from actual execution:
//
//   - NoisePct: zero-mean per-step jitter (cache effects,
//     data-dependent control flow), which largely averages out over
//     multi-iteration gaps;
//   - BiasPct: a systematic per-nest scale factor (the compiler's
//     gethrtime-derived mean misestimating a particular nest's
//     per-iteration cost), which shifts whole idle periods and is
//     the dominant cause of disk-speed mispredictions (Table 3).
type Model struct {
	// ClockHz is the CPU clock rate.
	ClockHz float64
	// NoisePct is the peak-to-mean execution time variation: each
	// actual duration is the mean scaled by a factor drawn
	// deterministically from [1-NoisePct/100, 1+NoisePct/100].
	NoisePct float64
	// BiasPct is the peak systematic per-nest estimation error; each
	// nest's actual per-iteration time is the mean scaled by a
	// deterministic factor in [1-BiasPct/100, 1+BiasPct/100].
	BiasPct float64
	// Seed selects the deterministic jitter and bias sequences.
	Seed uint64
}

// New returns a model with the given clock, noise percentage, and
// jitter seed.
func New(clockHz, noisePct float64, seed uint64) *Model {
	if clockHz <= 0 {
		clockHz = DefaultClockHz
	}
	if noisePct < 0 {
		noisePct = 0
	}
	return &Model{ClockHz: clockHz, NoisePct: noisePct, Seed: seed}
}

// MeanMS returns the compiler's estimate for the duration of the
// given number of compute cycles: the measured mean, with no jitter.
func (m *Model) MeanMS(cyc int64) float64 {
	return float64(cyc) / m.ClockHz * 1e3
}

// ActualMS returns the actual duration of the given number of
// compute cycles at execution step `step`. The jitter is a
// deterministic function of (Seed, step), so traces are reproducible.
func (m *Model) ActualMS(cyc int64, step uint64) float64 {
	return m.MeanMS(cyc) * m.JitterFactor(step)
}

// ActualMSIn returns the actual duration of the given number of
// compute cycles at execution step `step` inside the given nest,
// applying both the per-step jitter and the nest's systematic bias.
func (m *Model) ActualMSIn(cyc int64, step uint64, nest int) float64 {
	return m.MeanMS(cyc) * m.JitterFactor(step) * m.NestBias(nest)
}

// NestBias returns the systematic actual/estimated time ratio of the
// given nest, in [1-BiasPct/100, 1+BiasPct/100], deterministic in
// (Seed, nest).
func (m *Model) NestBias(nest int) float64 {
	if m.BiasPct == 0 {
		return 1
	}
	u := splitmix64((m.Seed ^ 0xA5A5A5A5A5A5A5A5) + uint64(nest)*0xD1342543DE82EF95)
	f := float64(int64(u>>11))/(1<<52) - 1
	return 1 + f*m.BiasPct/100
}

// JitterFactor returns the multiplicative jitter applied at the given
// step, in [1-NoisePct/100, 1+NoisePct/100].
func (m *Model) JitterFactor(step uint64) float64 {
	if m.NoisePct == 0 {
		return 1
	}
	u := splitmix64(m.Seed + step*0x9E3779B97F4A7C15)
	// Map to [-1, 1).
	f := float64(int64(u>>11))/(1<<52) - 1
	return 1 + f*m.NoisePct/100
}

// CyclesForMS returns the cycle count whose mean duration is the
// given number of milliseconds, for calibrating workload statement
// costs.
func (m *Model) CyclesForMS(ms float64) int64 {
	return int64(ms / 1e3 * m.ClockHz)
}

// splitmix64 is the SplitMix64 mixing function; a high-quality
// stateless hash used for the deterministic jitter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
