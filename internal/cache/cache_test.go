package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func k(f string, u int64) Key { return Key{File: f, Unit: u} }

func TestBasicHitMiss(t *testing.T) {
	c := New(2)
	if c.Touch(k("a", 0)) {
		t.Error("first touch hit")
	}
	if !c.Touch(k("a", 0)) {
		t.Error("second touch missed")
	}
	if c.Touch(k("a", 1)) {
		t.Error("new unit hit")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Touch(k("a", 0))
	c.Touch(k("a", 1))
	c.Touch(k("a", 0)) // 0 now MRU, 1 LRU
	c.Touch(k("a", 2)) // evicts 1
	if !c.Contains(k("a", 0)) {
		t.Error("unit 0 evicted")
	}
	if c.Contains(k("a", 1)) {
		t.Error("unit 1 survived")
	}
	if !c.Contains(k("a", 2)) {
		t.Error("unit 2 missing")
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	for i := 0; i < 5; i++ {
		if c.Touch(k("a", 0)) {
			t.Fatal("zero-capacity cache hit")
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
	c = New(-3)
	if c.Cap() != 0 {
		t.Error("negative capacity not clamped")
	}
}

func TestDistinctFilesDistinctKeys(t *testing.T) {
	c := New(4)
	c.Touch(k("a", 0))
	if c.Touch(k("b", 0)) {
		t.Error("unit 0 of file b hit on file a's entry")
	}
}

func TestSequentialSweepMissesEveryUnitWhenLarger(t *testing.T) {
	// The workload property Table 2 relies on: an array much larger
	// than the cache misses on every unit in every sweep.
	c := New(8)
	const units = 100
	for sweep := 0; sweep < 3; sweep++ {
		for u := int64(0); u < units; u++ {
			if c.Touch(k("a", u)) {
				t.Fatalf("sweep %d unit %d unexpectedly hit", sweep, u)
			}
		}
	}
	_, misses := c.Stats()
	if misses != 300 {
		t.Errorf("misses = %d, want 300", misses)
	}
}

func TestRepeatedTouchesWithinUnitHit(t *testing.T) {
	// Consecutive element accesses within one stripe unit hit.
	c := New(8)
	miss := 0
	for i := 0; i < 1000; i++ {
		if !c.Touch(k("a", int64(i/250))) {
			miss++
		}
	}
	if miss != 4 {
		t.Errorf("misses = %d, want 4", miss)
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.Touch(k("a", 0))
	c.Reset()
	if c.Len() != 0 {
		t.Error("len after reset")
	}
	h, m := c.Stats()
	if h != 0 || m != 0 {
		t.Error("stats after reset")
	}
	if c.Contains(k("a", 0)) {
		t.Error("contains after reset")
	}
}

func TestLRUInvariants(t *testing.T) {
	// Property: Len never exceeds capacity; hits+misses equals
	// touches; a touched key is always present afterwards (cap>0).
	rng := rand.New(rand.NewSource(42))
	c := New(16)
	touches := int64(0)
	for i := 0; i < 5000; i++ {
		key := k(fmt.Sprintf("f%d", rng.Intn(3)), int64(rng.Intn(40)))
		c.Touch(key)
		touches++
		if c.Len() > c.Cap() {
			t.Fatalf("len %d exceeds cap %d", c.Len(), c.Cap())
		}
		if !c.Contains(key) {
			t.Fatal("touched key absent")
		}
	}
	h, m := c.Stats()
	if h+m != touches {
		t.Fatalf("hits %d + misses %d != touches %d", h, m, touches)
	}
}
