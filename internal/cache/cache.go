// Package cache implements the buffer cache that sits between the
// application's array references and the disk subsystem. Following
// the paper's setup, data is cached at stripe-unit granularity: an
// array reference causes a disk access unless its stripe unit is
// already cached, which is what makes the evaluated workloads issue
// one request per stripe unit per sweep.
package cache

import "container/list"

// Key identifies one stripe unit of one array file.
type Key struct {
	File string
	Unit int64
}

// LRU is a fixed-capacity least-recently-used cache of stripe units.
// The zero value is not usable; use New.
type LRU struct {
	capacity int
	ll       *list.List
	m        map[Key]*list.Element
	hits     int64
	misses   int64
}

// New returns an LRU holding at most capUnits stripe units. A
// capacity of zero disables caching (every touch misses).
func New(capUnits int) *LRU {
	if capUnits < 0 {
		capUnits = 0
	}
	return &LRU{
		capacity: capUnits,
		ll:       list.New(),
		m:        make(map[Key]*list.Element, capUnits),
	}
}

// Touch records an access to the given unit. It reports whether the
// unit was present (a cache hit); on a miss the unit is inserted,
// evicting the least recently used unit if the cache is full.
func (c *LRU) Touch(k Key) bool {
	if e, ok := c.m[k]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return true
	}
	c.misses++
	if c.capacity == 0 {
		return false
	}
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		delete(c.m, back.Value.(Key))
		c.ll.Remove(back)
	}
	c.m[k] = c.ll.PushFront(k)
	return false
}

// Contains reports whether the unit is cached, without touching it.
func (c *LRU) Contains(k Key) bool {
	_, ok := c.m[k]
	return ok
}

// Len returns the number of cached units.
func (c *LRU) Len() int { return c.ll.Len() }

// Cap returns the capacity in units.
func (c *LRU) Cap() int { return c.capacity }

// Stats returns the cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses int64) { return c.hits, c.misses }

// Reset empties the cache and clears the statistics.
func (c *LRU) Reset() {
	c.ll.Init()
	c.m = make(map[Key]*list.Element, c.capacity)
	c.hits, c.misses = 0, 0
}
