// Package stats provides the result-table machinery the experiment
// drivers use: numeric tables with labelled rows and columns,
// normalization against a base column, aggregate helpers, and plain
// text rendering of the kind the paper's tables and bar charts
// report.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Row is one labelled table row.
type Row struct {
	Label  string
	Values []float64
}

// Table is a titled numeric table.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	// Precision is the number of decimals in rendering (default 3).
	Precision int
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Col returns the index of the named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the cell at (rowLabel, colName).
func (t *Table) Value(rowLabel, colName string) (float64, bool) {
	ci := t.Col(colName)
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Values) {
			return r.Values[ci], true
		}
	}
	return 0, false
}

// ColumnMean returns the arithmetic mean of one column.
func (t *Table) ColumnMean(colName string) (float64, bool) {
	ci := t.Col(colName)
	if ci < 0 || len(t.Rows) == 0 {
		return 0, false
	}
	var sum float64
	n := 0
	for _, r := range t.Rows {
		if ci < len(r.Values) {
			sum += r.Values[ci]
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// WithMeanRow returns a copy of the table with an appended "average"
// row of column means (the paper reports cross-benchmark averages).
func (t *Table) WithMeanRow() *Table {
	cp := &Table{Title: t.Title, Columns: t.Columns, Precision: t.Precision}
	cp.Rows = append(cp.Rows, t.Rows...)
	means := make([]float64, len(t.Columns))
	for i, c := range t.Columns {
		means[i], _ = t.ColumnMean(c)
	}
	cp.Add("average", means...)
	return cp
}

// Normalized returns a copy with every row divided by the row's value
// in the named base column (the paper's "normalized with respect to
// the base version").
func (t *Table) Normalized(baseCol string) (*Table, error) {
	ci := t.Col(baseCol)
	if ci < 0 {
		return nil, fmt.Errorf("stats: no column %q", baseCol)
	}
	cp := &Table{Title: t.Title + " (normalized)", Columns: t.Columns, Precision: t.Precision}
	for _, r := range t.Rows {
		if ci >= len(r.Values) || r.Values[ci] == 0 {
			return nil, fmt.Errorf("stats: row %q has no usable base value", r.Label)
		}
		nv := make([]float64, len(r.Values))
		for i, v := range r.Values {
			nv[i] = v / r.Values[ci]
		}
		cp.Add(r.Label, nv...)
	}
	return cp, nil
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	prec := t.Precision
	if prec <= 0 {
		prec = 3
	}
	labW := len("label")
	for _, r := range t.Rows {
		if len(r.Label) > labW {
			labW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r.Values))
		for i, v := range r.Values {
			s := formatCell(v, prec)
			cells[ri][i] = s
			if i < len(colW) && len(s) > colW[i] {
				colW[i] = len(s)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintf(w, "%-*s", labW, "")
	for i, c := range t.Columns {
		fmt.Fprintf(w, "  %*s", colW[i], c)
	}
	fmt.Fprintln(w)
	for ri, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", labW, r.Label)
		for i := range r.Values {
			width := 8
			if i < len(colW) {
				width = colW[i]
			}
			fmt.Fprintf(w, "  %*s", width, cells[ri][i])
		}
		fmt.Fprintln(w)
	}
}

func formatCell(v float64, prec int) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprint(v)
	}
	if v == math.Trunc(v) && math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV: a header row of "label" plus
// the column names, then one row per table row. Labels containing
// commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	prec := t.Precision
	if prec <= 0 {
		prec = 6
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
