package stats

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "t", Columns: []string{"Base", "A", "B"}}
	t.Add("x", 10, 5, 20)
	t.Add("y", 4, 2, 8)
	return t
}

func TestColAndValue(t *testing.T) {
	tb := sample()
	if tb.Col("A") != 1 || tb.Col("nope") != -1 {
		t.Error("Col")
	}
	v, ok := tb.Value("y", "B")
	if !ok || v != 8 {
		t.Errorf("Value = %v, %v", v, ok)
	}
	if _, ok := tb.Value("z", "B"); ok {
		t.Error("missing row found")
	}
	if _, ok := tb.Value("y", "C"); ok {
		t.Error("missing col found")
	}
}

func TestColumnMeanAndMeanRow(t *testing.T) {
	tb := sample()
	m, ok := tb.ColumnMean("A")
	if !ok || m != 3.5 {
		t.Errorf("mean = %v", m)
	}
	if _, ok := tb.ColumnMean("nope"); ok {
		t.Error("mean of missing column")
	}
	wm := tb.WithMeanRow()
	if len(wm.Rows) != 3 || wm.Rows[2].Label != "average" {
		t.Fatalf("rows = %v", wm.Rows)
	}
	if wm.Rows[2].Values[0] != 7 {
		t.Errorf("avg base = %v", wm.Rows[2].Values[0])
	}
	// Original untouched.
	if len(tb.Rows) != 2 {
		t.Error("WithMeanRow mutated input")
	}
}

func TestNormalized(t *testing.T) {
	tb := sample()
	n, err := tb.Normalized("Base")
	if err != nil {
		t.Fatal(err)
	}
	if n.Rows[0].Values[0] != 1 || n.Rows[0].Values[1] != 0.5 || n.Rows[0].Values[2] != 2 {
		t.Errorf("normalized row = %v", n.Rows[0].Values)
	}
	if n.Rows[1].Values[2] != 2 {
		t.Errorf("row y = %v", n.Rows[1].Values)
	}
	if _, err := tb.Normalized("nope"); err == nil {
		t.Error("missing base accepted")
	}
	bad := &Table{Columns: []string{"Base"}}
	bad.Add("x", 0)
	if _, err := bad.Normalized("Base"); err == nil {
		t.Error("zero base accepted")
	}
}

func TestRender(t *testing.T) {
	tb := sample()
	out := tb.String()
	for _, want := range []string{"t\n", "Base", "A", "B", "x", "y", "10.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Large integers render without decimals.
	tb2 := &Table{Columns: []string{"E"}}
	tb2.Add("big", 20836)
	if !strings.Contains(tb2.String(), "20836") || strings.Contains(tb2.String(), "20836.000") {
		t.Errorf("big int render:\n%s", tb2.String())
	}
	// Inf/NaN don't panic.
	tb3 := &Table{Columns: []string{"E"}}
	tb3.Add("inf", math.Inf(1))
	_ = tb3.String()
}

func TestRenderCSV(t *testing.T) {
	tb := sample()
	var buf strings.Builder
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "label,Base,A,B\nx,10,5,20\ny,4,2,8\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
