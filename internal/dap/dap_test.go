package dap

import (
	"strings"
	"testing"

	"sdpm/internal/trace"
	"sdpm/internal/tracegen"
)

func svc(int64) float64 { return 6.5 }

func TestBuildBasic(t *testing.T) {
	// Disk 0: requests at t=0 and t=10 (coalesced), then at t=500.
	// Disk 1: never accessed.
	sites := []tracegen.Site{
		{Nest: 0, Iter: 0, Disk: 0, Bytes: 64, Kind: trace.Read},
		{Nest: 0, Iter: 5, Disk: 0, Bytes: 64, Kind: trace.Read},
		{Nest: 1, Iter: 3, Disk: 0, Bytes: 64, Kind: trace.Read},
	}
	issue := []float64{0, 10, 500}
	d := Build(sites, issue, 2, svc, 50)

	d0 := d.Disks[0]
	// idle@start, active@(0,0), idle@(0,6), active@(1,3), idle@(1,4).
	if len(d0) != 5 {
		t.Fatalf("disk0 entries = %v", d0)
	}
	if d0[0].Stat != Idle || d0[0].Nest != 0 || d0[0].Iter != 0 {
		t.Errorf("entry 0 = %+v", d0[0])
	}
	if d0[1].Stat != Active || d0[1].Nest != 0 || d0[1].Iter != 0 {
		t.Errorf("entry 1 = %+v", d0[1])
	}
	if d0[2].Stat != Idle || d0[2].Nest != 0 || d0[2].Iter != 6 || d0[2].AtMS != 16.5 {
		t.Errorf("entry 2 = %+v", d0[2])
	}
	if d0[3].Stat != Active || d0[3].Nest != 1 || d0[3].Iter != 3 || d0[3].AtMS != 500 {
		t.Errorf("entry 3 = %+v", d0[3])
	}
	if d0[4].Stat != Idle || d0[4].AtMS != 506.5 {
		t.Errorf("entry 4 = %+v", d0[4])
	}
	// Disk 1 is idle forever: a single entry.
	if len(d.Disks[1]) != 1 || d.Disks[1][0].Stat != Idle {
		t.Errorf("disk1 = %v", d.Disks[1])
	}
}

func TestCoalescing(t *testing.T) {
	sites := []tracegen.Site{
		{Disk: 0}, {Disk: 0}, {Disk: 0},
	}
	for i := range sites {
		sites[i].Bytes = 64
	}
	issue := []float64{0, 20, 40}
	// Window 50: all one active interval.
	d := Build(sites, issue, 1, svc, 50)
	if len(d.Disks[0]) != 3 { // idle, active, idle
		t.Fatalf("coalesced entries = %v", d.Disks[0])
	}
	// Window 5: three separate intervals.
	d = Build(sites, issue, 1, svc, 5)
	if len(d.Disks[0]) != 7 {
		t.Fatalf("split entries = %v", d.Disks[0])
	}
}

func TestIdleMS(t *testing.T) {
	sites := []tracegen.Site{{Disk: 0, Bytes: 64, Iter: 0}}
	issue := []float64{100}
	d := Build(sites, issue, 1, svc, 50)
	// Idle [0,100) + trailing idle [106.5, 200).
	got := d.IdleMS(0, 200)
	if got != 100+93.5 {
		t.Errorf("IdleMS = %g", got)
	}
}

func TestFormat(t *testing.T) {
	sites := []tracegen.Site{{Disk: 0, Bytes: 64, Nest: 2, Iter: 50}}
	d := Build(sites, []float64{10}, 1, svc, 50)
	out := d.Format(0)
	if !strings.Contains(out, "< Nest 2, iteration 50, active >") {
		t.Errorf("format output:\n%s", out)
	}
	all := d.String()
	if !strings.Contains(all, "disk0:") {
		t.Errorf("String output:\n%s", all)
	}
}

func TestDefaultCoalesce(t *testing.T) {
	sites := []tracegen.Site{{Disk: 0, Bytes: 64}}
	d := Build(sites, []float64{0}, 1, svc, 0)
	if len(d.Disks[0]) != 3 {
		t.Fatalf("entries = %v", d.Disks[0])
	}
	if Idle.String() != "idle" || Active.String() != "active" {
		t.Error("state strings")
	}
}
