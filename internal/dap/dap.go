// Package dap builds the Disk Access Pattern (DAP) of Section 3: for
// each disk, a compact list of idle/active transitions expressed in
// (nest, iteration) coordinates, as in the paper's example
//
//	< Nest 1, iteration 1,   idle   >
//	< Nest 2, iteration 50,  active >
//	< Nest 2, iteration 100, idle   >
//
// The DAP is derived from the request sites and the compiler's
// predicted timeline; consecutive requests on a disk closer together
// than the coalescing window belong to one active interval.
package dap

import (
	"fmt"
	"strings"

	"sdpm/internal/tracegen"
)

// State is a disk activity state.
type State uint8

// Disk activity states.
const (
	Idle State = iota
	Active
)

// String returns "idle" or "active".
func (s State) String() string {
	if s == Active {
		return "active"
	}
	return "idle"
}

// Entry is one DAP transition: from this (nest, iteration) on, the
// disk is in the given state. AtMS is the predicted time of the
// transition.
type Entry struct {
	Nest int
	Iter int64
	Stat State
	AtMS float64
}

// DAP is the per-disk access pattern.
type DAP struct {
	Disks [][]Entry
}

// DefaultCoalesceMS is the default active-interval coalescing window.
const DefaultCoalesceMS = 50

// Build constructs the DAP from the request sites and their predicted
// issue times (tracegen.PredictedIssueMS). serviceMS supplies the
// full-speed service time; coalesceMS <= 0 selects the default.
func Build(sites []tracegen.Site, issueMS []float64, numDisks int, serviceMS func(bytes int64) float64, coalesceMS float64) *DAP {
	if coalesceMS <= 0 {
		coalesceMS = DefaultCoalesceMS
	}
	d := &DAP{Disks: make([][]Entry, numDisks)}
	lastEnd := make([]float64, numDisks) // completion of the disk's current active interval
	lastSite := make([]int, numDisks)    // index of the interval's last site
	inActive := make([]bool, numDisks)
	for i := range d.Disks {
		d.Disks[i] = []Entry{{Nest: 0, Iter: 0, Stat: Idle, AtMS: 0}}
		lastSite[i] = -1
	}
	for i, s := range sites {
		dd := s.Disk
		end := issueMS[i] + serviceMS(s.Bytes)
		if inActive[dd] && issueMS[i]-lastEnd[dd] <= coalesceMS {
			// Extend the current active interval.
			lastEnd[dd] = end
			lastSite[dd] = i
			continue
		}
		if inActive[dd] {
			// Close the previous interval at its last request.
			p := sites[lastSite[dd]]
			d.Disks[dd] = append(d.Disks[dd], Entry{Nest: p.Nest, Iter: p.Iter + 1, Stat: Idle, AtMS: lastEnd[dd]})
		}
		d.Disks[dd] = append(d.Disks[dd], Entry{Nest: s.Nest, Iter: s.Iter, Stat: Active, AtMS: issueMS[i]})
		inActive[dd] = true
		lastEnd[dd] = end
		lastSite[dd] = i
	}
	for dd := range d.Disks {
		if inActive[dd] {
			p := sites[lastSite[dd]]
			d.Disks[dd] = append(d.Disks[dd], Entry{Nest: p.Nest, Iter: p.Iter + 1, Stat: Idle, AtMS: lastEnd[dd]})
		}
	}
	return d
}

// IdleMS returns the total predicted idle time of a disk up to
// endMS, summed over its idle intervals.
func (d *DAP) IdleMS(disk int, endMS float64) float64 {
	var total float64
	es := d.Disks[disk]
	for i, e := range es {
		if e.Stat != Idle {
			continue
		}
		next := endMS
		if i+1 < len(es) {
			next = es[i+1].AtMS
		}
		if next > e.AtMS {
			total += next - e.AtMS
		}
	}
	return total
}

// Format renders one disk's DAP in the paper's notation.
func (d *DAP) Format(disk int) string {
	var b strings.Builder
	for _, e := range d.Disks[disk] {
		fmt.Fprintf(&b, "< Nest %d, iteration %d, %s >\n", e.Nest, e.Iter, e.Stat)
	}
	return b.String()
}

// String renders the whole DAP.
func (d *DAP) String() string {
	var b strings.Builder
	for i := range d.Disks {
		fmt.Fprintf(&b, "disk%d:\n", i)
		for _, e := range d.Disks[i] {
			fmt.Fprintf(&b, "  < Nest %d, iteration %d, %s >\n", e.Nest, e.Iter, e.Stat)
		}
	}
	return b.String()
}
