package netx

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdpm/internal/faults"
)

// Distinct splitmix64 streams keep each fault kind's per-connection
// decisions independent for the same connection index (the same
// convention as internal/faults and serve.Chaos).
const (
	streamJitter    = 0x6e6574780a000001
	streamReset     = 0x6e6574780a000002
	streamTruncate  = 0x6e6574780a000003
	streamCorrupt   = 0x6e6574780a000004
	streamBlackhole = 0x6e6574780a000005
	streamStall     = 0x6e6574780a000006
	streamCorruptAt = 0x6e6574780a000007
)

// Counters is a snapshot of the proxy's injected-fault tallies. All
// fields count connections except Corrupts, which counts corruptions
// that actually landed on a body byte.
type Counters struct {
	Accepted   int64
	Blackholes int64
	Resets     int64
	Truncates  int64
	Corrupts   int64
	Stalls     int64
}

// String renders the counters as a deterministic single line.
func (c Counters) String() string {
	return fmt.Sprintf("accepted=%d blackholes=%d resets=%d truncates=%d corrupts=%d stalls=%d",
		c.Accepted, c.Blackholes, c.Resets, c.Truncates, c.Corrupts, c.Stalls)
}

// Proxy is the fault-injecting TCP reverse proxy. Create with New,
// start with Start, stop with Close. A Proxy is safe for concurrent
// connections; fault decisions are keyed by each connection's accept
// index, which is assigned in accept order.
type Proxy struct {
	upstream string
	seed     int64
	cfg      Config

	resetAt, truncateAt, corruptAt, blackholeAt, stallAt map[int]bool

	ln      net.Listener
	connSeq atomic.Uint64

	accepted, blackholes, resets, truncates, corrupts, stalls atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed chan struct{}
	wg     sync.WaitGroup
}

// New builds a proxy forwarding to the upstream host:port with the
// given fault configuration and seed.
func New(upstream string, seed int64, cfg Config) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Proxy{
		upstream:    upstream,
		seed:        seed,
		cfg:         cfg,
		resetAt:     indexSet(cfg.ResetAt),
		truncateAt:  indexSet(cfg.TruncateAt),
		corruptAt:   indexSet(cfg.CorruptAt),
		blackholeAt: indexSet(cfg.BlackholeAt),
		stallAt:     indexSet(cfg.StallAt),
		conns:       make(map[net.Conn]bool),
		closed:      make(chan struct{}),
	}, nil
}

func indexSet(at []int) map[int]bool {
	m := make(map[int]bool, len(at))
	for _, i := range at {
		m[i] = true
	}
	return m
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// begins accepting; it returns the bound address immediately.
func (p *Proxy) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr(), nil
}

// Addr returns the proxy's bound address (nil before Start).
func (p *Proxy) Addr() net.Addr {
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops the listener, severs every open connection (including
// blackholed ones), and waits for the handlers to finish.
func (p *Proxy) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// Counters returns the injected-fault tallies so far.
func (p *Proxy) Counters() Counters {
	return Counters{
		Accepted:   p.accepted.Load(),
		Blackholes: p.blackholes.Load(),
		Resets:     p.resets.Load(),
		Truncates:  p.truncates.Load(),
		Corrupts:   p.corrupts.Load(),
		Stalls:     p.stalls.Load(),
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := int(p.connSeq.Add(1) - 1)
		p.accepted.Add(1)
		p.track(conn, true)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.track(conn, false)
			defer conn.Close()
			p.handle(conn, idx)
		}()
	}
}

func (p *Proxy) track(c net.Conn, add bool) {
	p.mu.Lock()
	if add {
		p.conns[c] = true
	} else {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// connPlan is one connection's resolved fault schedule.
type connPlan struct {
	blackhole bool
	reset     bool
	truncate  bool
	corrupt   bool
	stall     bool

	delay      time.Duration
	corruptOff int64 // body offset of the flipped byte
	corruptXor byte
}

// plan resolves connection idx's faults: exact-index membership wins,
// otherwise the seeded per-kind probability draw decides.
func (p *Proxy) plan(idx int) connPlan {
	c := p.cfg
	k := uint64(idx)
	draw := func(stream uint64, prob float64, at map[int]bool) bool {
		if at[idx] {
			return true
		}
		if prob <= 0 {
			return false
		}
		return faults.Uniform(p.seed, stream, k) < prob
	}
	pl := connPlan{
		blackhole: draw(streamBlackhole, c.BlackholeProb, p.blackholeAt),
		reset:     draw(streamReset, c.ResetProb, p.resetAt),
		truncate:  draw(streamTruncate, c.TruncateProb, p.truncateAt),
		corrupt:   draw(streamCorrupt, c.CorruptProb, p.corruptAt),
		stall:     draw(streamStall, c.StallProb, p.stallAt),
	}
	delayMS := c.LatencyMS
	if c.JitterMS > 0 {
		delayMS += faults.Uniform(p.seed, streamJitter, k) * c.JitterMS
	}
	pl.delay = time.Duration(delayMS * float64(time.Millisecond))
	if pl.corrupt {
		cd := faults.Uniform(p.seed, streamCorruptAt, k)
		pl.corruptOff = int64(cd * 32)
		// A nonzero XOR mask derived from the same draw; 1..255.
		pl.corruptXor = byte(1 + int(cd*255)%255)
	}
	return pl
}

// handle proxies one client connection through the fault pipeline.
// The request path (client -> upstream) is forwarded untouched; every
// fault applies to the response path.
func (p *Proxy) handle(client net.Conn, idx int) {
	pl := p.plan(idx)
	if pl.blackhole {
		p.blackholes.Add(1)
		// Swallow the request and never answer; the connection dies
		// when the client gives up or the proxy closes.
		io.Copy(io.Discard, client)
		return
	}
	upstream, err := net.Dial("tcp", p.upstream)
	if err != nil {
		slog.Warn("netx: upstream dial failed", "upstream", p.upstream, "err", err)
		return
	}
	defer upstream.Close()
	p.track(upstream, true)
	defer p.track(upstream, false)

	// Request path: verbatim. CloseWrite propagates the client's FIN
	// so the upstream sees end-of-request.
	go func() {
		io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	p.pumpResponse(client, upstream, pl)
}

// pumpResponse forwards upstream->client applying latency, rate,
// stall, corruption, truncation, and reset per the plan.
func (p *Proxy) pumpResponse(client, upstream net.Conn, pl connPlan) {
	resetAfter := p.cfg.ResetAfterBytes
	if pl.reset && resetAfter == 0 {
		resetAfter = 64
	}
	truncAfter := p.cfg.TruncateAfterBytes
	if pl.truncate && truncAfter == 0 {
		truncAfter = 1
	}

	var (
		total     int64 // response bytes forwarded
		body      int64 // body bytes forwarded (past the first CRLFCRLF)
		inBody    bool
		tail      [3]byte // carries the header-end scan across chunks
		tailLen   int
		first     = true
		stalled   bool
		corrupted = !pl.corrupt
	)
	buf := make([]byte, 1024)
	for {
		n, rerr := upstream.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if first {
				first = false
				if pl.delay > 0 && !p.sleep(pl.delay) {
					return
				}
			}
			// Scan for the end of the HTTP headers so body-relative
			// faults (corrupt, truncate, stall) land past them.
			start := 0
			if !inBody {
				if off := headerEnd(tail[:tailLen], chunk); off >= 0 {
					inBody = true
					start = off
				} else {
					// Carry the last 3 bytes of tail+chunk combined: a
					// chunk shorter than the terminator must not drop
					// previously carried bytes, or a CRLFCRLF split
					// across tiny reads is never detected.
					joined := append(tail[:tailLen:tailLen], chunk...)
					tailLen = copy(tail[:], lastN(joined, 3))
				}
			}
			if inBody {
				bodyChunk := chunk[start:]
				if !corrupted {
					rel := pl.corruptOff - body
					if rel >= 0 && rel < int64(len(bodyChunk)) {
						bodyChunk[rel] ^= pl.corruptXor
						corrupted = true
						p.corrupts.Add(1)
					}
				}
				if pl.stall && !stalled && body+int64(len(bodyChunk)) > p.cfg.StallAfterBytes {
					stalled = true
					p.stalls.Add(1)
					ms := p.cfg.StallMS
					if ms == 0 {
						ms = 100
					}
					if !p.sleep(time.Duration(ms * float64(time.Millisecond))) {
						return
					}
				}
				body += int64(len(bodyChunk))
			}
			// Reset: forward up to the reset point, then RST.
			if pl.reset && total+int64(n) >= resetAfter {
				keep := resetAfter - total
				if keep > 0 {
					client.Write(chunk[:keep])
				}
				p.resets.Add(1)
				if tc, ok := client.(*net.TCPConn); ok {
					tc.SetLinger(0) // RST instead of FIN
				}
				return
			}
			// Truncate: forward up to the cut point of the body, then
			// close cleanly.
			if pl.truncate && inBody && body > truncAfter {
				over := body - truncAfter
				keep := int64(n) - over
				if keep > 0 {
					client.Write(chunk[:keep])
				}
				p.truncates.Add(1)
				return
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			total += int64(n)
			if p.cfg.RateKBps > 0 {
				// Pace after each chunk: bytes / (KB/s * 1024) seconds.
				d := time.Duration(float64(n) / (p.cfg.RateKBps * 1024) * float64(time.Second))
				if d > 0 && !p.sleep(d) {
					return
				}
			}
		}
		if rerr != nil {
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			// Drain until the client goes away so late request bytes
			// (pipelined or keep-alive probes) don't reset the client.
			return
		}
	}
}

// sleep waits d, returning false if the proxy closed meanwhile.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}

// headerEnd locates the first byte past the HTTP header terminator
// (CRLFCRLF) considering up to 3 bytes of carry-over from the
// previous chunk; -1 when the terminator is not in this chunk.
func headerEnd(tail, chunk []byte) int {
	joined := string(tail) + string(chunk)
	if i := strings.Index(joined, "\r\n\r\n"); i >= 0 {
		off := i + 4 - len(tail)
		if off < 0 {
			off = 0
		}
		if off > len(chunk) {
			off = len(chunk)
		}
		return off
	}
	return -1
}

// lastN returns the trailing n bytes of b (or all of b).
func lastN(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}
