package netx

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// upstreamHTTP boots a plain HTTP server returning a fixed body and a
// proxy in front of it, and returns the proxy's base URL plus a
// cleanup-registered handle to both.
func upstreamHTTP(t *testing.T, body string, seed int64, cfg Config) (string, *Proxy) {
	t.Helper()
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(up.Close)
	p, err := New(strings.TrimPrefix(up.URL, "http://"), seed, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return "http://" + addr.String(), p
}

// client returns an HTTP client that opens a fresh connection per
// request (keep-alive off), aligning request attempts with the
// proxy's connection indices.
func client(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func TestPassthrough(t *testing.T) {
	const body = "hello from upstream\n"
	base, p := upstreamHTTP(t, body, 1, Config{})
	resp, err := client(5 * time.Second).Get(base + "/x")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != body {
		t.Fatalf("body = %q, want %q", got, body)
	}
	c := p.Counters()
	if c.Accepted != 1 || c.Resets+c.Truncates+c.Corrupts+c.Blackholes+c.Stalls != 0 {
		t.Fatalf("counters = %+v, want one clean connection", c)
	}
}

func TestResetAtExactIndex(t *testing.T) {
	body := strings.Repeat("r", 4096)
	base, p := upstreamHTTP(t, body, 1, Config{ResetAt: []int{1}})
	cl := client(5 * time.Second)

	// Connection 0: clean.
	resp, err := cl.Get(base)
	if err != nil {
		t.Fatalf("conn 0: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(b) != body {
		t.Fatalf("conn 0 body err=%v len=%d", err, len(b))
	}

	// Connection 1: reset mid-response.
	resp, err = cl.Get(base)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatalf("conn 1: expected a transport error from the reset")
	}
	if got := p.Counters().Resets; got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
}

func TestTruncateShortensBody(t *testing.T) {
	body := strings.Repeat("t", 2048)
	base, p := upstreamHTTP(t, body, 1, Config{TruncateAt: []int{0}, TruncateAfterBytes: 100})
	resp, err := client(5 * time.Second).Get(base)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatalf("expected unexpected-EOF reading a truncated body, got %d clean bytes", len(got))
	}
	if len(got) > 200 {
		t.Fatalf("truncated body still delivered %d bytes", len(got))
	}
	if p.Counters().Truncates != 1 {
		t.Fatalf("truncates = %d, want 1", p.Counters().Truncates)
	}
}

func TestCorruptFlipsOneBodyByte(t *testing.T) {
	body := strings.Repeat("c", 512)
	base, p := upstreamHTTP(t, body, 7, Config{CorruptAt: []int{0}})
	resp, err := client(5 * time.Second).Get(base)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		t.Fatalf("read: %v", rerr)
	}
	if len(got) != len(body) {
		t.Fatalf("corruption changed the length: %d != %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted %d bytes, want exactly 1", diff)
	}
	if p.Counters().Corrupts != 1 {
		t.Fatalf("corrupts = %d, want 1", p.Counters().Corrupts)
	}
}

func TestBlackholeTimesOut(t *testing.T) {
	base, p := upstreamHTTP(t, "x", 1, Config{BlackholeAt: []int{0}})
	_, err := client(300 * time.Millisecond).Get(base)
	if err == nil {
		t.Fatalf("expected a timeout against a blackholed connection")
	}
	if p.Counters().Blackholes != 1 {
		t.Fatalf("blackholes = %d, want 1", p.Counters().Blackholes)
	}
}

func TestStallDelaysButCompletes(t *testing.T) {
	body := strings.Repeat("s", 4096)
	base, p := upstreamHTTP(t, body, 1, Config{StallAt: []int{0}, StallMS: 200})
	start := time.Now()
	resp, err := client(5 * time.Second).Get(base)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || string(got) != body {
		t.Fatalf("stalled response corrupted: err=%v len=%d", rerr, len(got))
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("response returned in %v; the 200ms stall did not happen", el)
	}
	if p.Counters().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", p.Counters().Stalls)
	}
}

func TestSeededDrawsAreDeterministic(t *testing.T) {
	cfg := Config{ResetProb: 0.3, CorruptProb: 0.2, StallProb: 0.1, BlackholeProb: 0.05}
	a, err := New("127.0.0.1:1", 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("127.0.0.1:1", 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New("127.0.0.1:1", 43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same, differ := true, false
	for i := 0; i < 512; i++ {
		pa, pb, po := a.plan(i), b.plan(i), other.plan(i)
		if pa != pb {
			same = false
		}
		if pa != po {
			differ = true
		}
	}
	if !same {
		t.Fatalf("same seed produced different plans")
	}
	if !differ {
		t.Fatalf("different seeds produced identical plans across 512 connections")
	}
}

func TestProxyCloseSeversBlackhole(t *testing.T) {
	base, p := upstreamHTTP(t, "x", 1, Config{BlackholeAt: []int{0}})
	errCh := make(chan error, 1)
	go func() {
		_, err := client(10 * time.Second).Get(base)
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond)
	p.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatalf("blackholed request succeeded after proxy close")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("blackholed request not severed by proxy close")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"off", "light", "moderate", "heavy",
		"latency=5,jitter=10,rate=2000",
		"reset=0.1,reset_at=1:5:9,reset_after=64",
		"truncate=0.2,truncate_after=10,corrupt=0.3,blackhole=0.05",
		"stall=0.5,stall_at=0:2,stall_ms=250,stall_after=128",
	} {
		c, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		out := FormatSpec(c)
		c2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("ParseSpec(FormatSpec(%q)=%q): %v", spec, out, err)
		}
		if FormatSpec(c2) != out {
			t.Fatalf("round trip unstable: %q -> %q -> %q", spec, out, FormatSpec(c2))
		}
	}
}

func TestSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"nope=1", "reset=2", "corrupt=-0.1", "latency=NaN", "reset_at=", "reset_at=-1",
		"stall", "=5", "blackhole=1e999",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected an error", spec)
		}
	}
}

func TestSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.spec"
	content := "# chaos for the soak\nreset=0.1, truncate=0.05\nstall=0.2 stall_ms=50\n"
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}
	c, err := ParseSpec("@" + path)
	if err != nil {
		t.Fatalf("ParseSpec(@file): %v", err)
	}
	if c.ResetProb != 0.1 || c.TruncateProb != 0.05 || c.StallProb != 0.2 || c.StallMS != 50 {
		t.Fatalf("parsed config %+v", c)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// An upstream that dribbles the response one byte at a time must not
// defeat the header-end scan: the CRLFCRLF terminator spans many tiny
// reads, and body-relative faults still have to land.
func TestHeaderSplitAcrossTinyReadsStillCorrupts(t *testing.T) {
	body := strings.Repeat("b", 256)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, aerr := ln.Accept()
			if aerr != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				c.Read(buf) // request head; one read is enough for a GET
				head := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", len(body))
				for i := 0; i < len(head); i++ {
					if _, werr := c.Write([]byte{head[i]}); werr != nil {
						return
					}
					// Give the proxy time to Read each byte separately so
					// the terminator really is split across chunks.
					time.Sleep(time.Millisecond)
				}
				c.Write([]byte(body))
			}(conn)
		}
	}()

	p, err := New(ln.Addr().String(), 7, Config{CorruptAt: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := client(10 * time.Second).Get("http://" + addr.String())
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		t.Fatalf("read: %v", rerr)
	}
	if len(got) != len(body) {
		t.Fatalf("body length %d, want %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted %d body bytes, want exactly 1 (header-end never found?)", diff)
	}
	if p.Counters().Corrupts != 1 {
		t.Fatalf("corrupts = %d, want 1", p.Counters().Corrupts)
	}
}

func TestUpstreamDownClosesConnection(t *testing.T) {
	// Point at a port nothing listens on: the proxy accepts, fails to
	// dial, and closes the client connection instead of hanging.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	p, err := New(dead, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, gerr := client(2 * time.Second).Get("http://" + addr.String())
	if gerr == nil {
		t.Fatalf("expected an error when the upstream is down")
	}
}
