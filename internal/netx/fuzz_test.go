package netx

import (
	"strings"
	"testing"
)

// FuzzNetxSpec shakes the spec parser: it must never panic, and every
// accepted spec must round-trip stably through FormatSpec/ParseSpec
// (the same contract FuzzParseSpec enforces for -faults).
func FuzzNetxSpec(f *testing.F) {
	for _, seed := range []string{
		"", "off", "light", "moderate", "heavy",
		"latency=5,jitter=10,rate=2000",
		"reset=0.1,reset_at=1:5:9,reset_after=64",
		"truncate=0.2,truncate_after=10",
		"corrupt=0.3,corrupt_at=0",
		"blackhole=0.05,blackhole_at=3:4",
		"stall=0.5,stall_at=0:2,stall_ms=250,stall_after=128",
		"reset=2", "latency=-1", "x=y", "reset_at=", "reset_at=1:x",
		"# comment\nreset=0.5", "latency=1e308", "stall_ms=NaN",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1<<12 {
			return
		}
		// Never read files during fuzzing: @-specs depend on the
		// filesystem, not the input bytes.
		if strings.HasPrefix(strings.TrimSpace(spec), "@") {
			return
		}
		c, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid config: %v", spec, verr)
		}
		canon := FormatSpec(c)
		c2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) failed to re-parse: %v", canon, spec, err)
		}
		if FormatSpec(c2) != canon {
			t.Fatalf("unstable round trip: %q -> %q -> %q", spec, canon, FormatSpec(c2))
		}
	})
}
