// Package netx is the network-fault tier of the robustness stack: a
// deterministic, seeded fault-injecting TCP reverse proxy that sits
// between a client and an upstream service (dpmd in this repo) and
// perturbs the byte stream the way real flaky links do — added
// latency and jitter, bandwidth throttling, mid-response connection
// resets, clean truncation, payload corruption, blackholes that never
// answer, and slow-loris stalls.
//
// Everything is derived from (seed, connection index, Config).
// Per-connection decisions are drawn from the same splitmix64 streams
// as internal/faults (one stream per fault kind, keyed by the
// connection's accept index), so a given seed reproduces the exact
// same fault schedule run after run; exact-index lists (reset_at=...)
// force a fault on specific connections regardless of the draws.
// Connections are indexed in accept order — with a sequential client
// that disables HTTP keep-alive (internal/client's default), one
// connection is one request attempt and the schedule is aligned with
// the client's retry stream.
//
// See docs/robustness.md "Network faults" for the spec grammar and
// the fault semantics.
package netx

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Config holds the proxy's fault knobs. The zero value injects
// nothing (Enabled reports false); construct presets with Preset or
// parse a spec with ParseSpec.
type Config struct {
	// LatencyMS delays the first response byte of every connection.
	LatencyMS float64
	// JitterMS adds a seeded extra delay in [0, JitterMS) on top of
	// LatencyMS, drawn per connection.
	JitterMS float64
	// RateKBps caps the response stream's bandwidth (0 = unlimited).
	RateKBps float64

	// ResetProb is the probability a connection's response is cut by a
	// TCP reset (RST) after ResetAfterBytes of response have been
	// forwarded — the ambiguous failure mode: the request usually
	// reached the upstream and was computed, but the client cannot
	// know, which is exactly what idempotency keys exist for.
	ResetProb float64
	// ResetAt lists exact connection indices reset regardless of the
	// probability draw.
	ResetAt []int
	// ResetAfterBytes is how much response passes before the reset
	// (0 = the default of 64 bytes, mid-headers or early body).
	ResetAfterBytes int64

	// TruncateProb is the probability a response is cleanly closed
	// (FIN) after TruncateAfterBytes of body — the client sees a short
	// body against the announced Content-Length.
	TruncateProb float64
	// TruncateAt lists exact truncated connection indices.
	TruncateAt []int
	// TruncateAfterBytes is how many body bytes pass before the close
	// (0 = the default of 1: cut after the first body byte).
	TruncateAfterBytes int64

	// CorruptProb is the probability one response body byte is
	// XOR-flipped at a seeded offset within the first 32 body bytes —
	// the silent-corruption mode only an end-to-end digest catches.
	CorruptProb float64
	// CorruptAt lists exact corrupted connection indices.
	CorruptAt []int

	// BlackholeProb is the probability the proxy accepts a connection,
	// swallows the request, and never answers — the client's timeout
	// or hedging must recover.
	BlackholeProb float64
	// BlackholeAt lists exact blackholed connection indices.
	BlackholeAt []int

	// StallProb is the probability a response stalls (slow-loris) for
	// StallMS after StallAfterBytes of body have been forwarded, then
	// resumes and completes normally.
	StallProb float64
	// StallAt lists exact stalled connection indices.
	StallAt []int
	// StallMS is the stall length in wall milliseconds (0 = 100).
	StallMS float64
	// StallAfterBytes is how many body bytes pass before the stall.
	StallAfterBytes int64
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.LatencyMS > 0 || c.JitterMS > 0 || c.RateKBps > 0 ||
		c.ResetProb > 0 || len(c.ResetAt) > 0 ||
		c.TruncateProb > 0 || len(c.TruncateAt) > 0 ||
		c.CorruptProb > 0 || len(c.CorruptAt) > 0 ||
		c.BlackholeProb > 0 || len(c.BlackholeAt) > 0 ||
		c.StallProb > 0 || len(c.StallAt) > 0
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks the configuration for NaN/Inf and out-of-range
// values.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"latency", c.LatencyMS},
		{"jitter", c.JitterMS},
		{"rate", c.RateKBps},
		{"reset", c.ResetProb},
		{"reset_after", float64(c.ResetAfterBytes)},
		{"truncate", c.TruncateProb},
		{"truncate_after", float64(c.TruncateAfterBytes)},
		{"corrupt", c.CorruptProb},
		{"blackhole", c.BlackholeProb},
		{"stall", c.StallProb},
		{"stall_ms", c.StallMS},
		{"stall_after", float64(c.StallAfterBytes)},
	} {
		if !finite(f.v) {
			return fmt.Errorf("netx: %s is not finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("netx: %s is negative", f.name)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"reset", c.ResetProb}, {"truncate", c.TruncateProb},
		{"corrupt", c.CorruptProb}, {"blackhole", c.BlackholeProb},
		{"stall", c.StallProb},
	} {
		if p.v > 1 {
			return fmt.Errorf("netx: %s probability %g outside [0,1]", p.name, p.v)
		}
	}
	for _, l := range []struct {
		name string
		at   []int
	}{
		{"reset_at", c.ResetAt}, {"truncate_at", c.TruncateAt},
		{"corrupt_at", c.CorruptAt}, {"blackhole_at", c.BlackholeAt},
		{"stall_at", c.StallAt},
	} {
		for _, i := range l.at {
			if i < 0 {
				return fmt.Errorf("netx: %s holds negative index %d", l.name, i)
			}
		}
	}
	return nil
}

// Preset returns a named severity level, mirroring the faults-package
// convention (off/light/moderate/heavy).
func Preset(name string) (Config, bool) {
	switch name {
	case "off", "none":
		return Config{}, true
	case "light":
		return Config{
			LatencyMS: 1, JitterMS: 2,
			ResetProb: 0.02, TruncateProb: 0.01, CorruptProb: 0.01,
		}, true
	case "moderate":
		return Config{
			LatencyMS: 2, JitterMS: 5, RateKBps: 5000,
			ResetProb: 0.05, TruncateProb: 0.03, CorruptProb: 0.03,
			StallProb: 0.05, StallMS: 50,
		}, true
	case "heavy":
		return Config{
			LatencyMS: 3, JitterMS: 8, RateKBps: 2000,
			ResetProb: 0.12, TruncateProb: 0.08, CorruptProb: 0.08,
			StallProb: 0.10, StallMS: 80,
		}, true
	}
	return Config{}, false
}

// PresetNames returns the preset severities in increasing order.
func PresetNames() []string { return []string{"off", "light", "moderate", "heavy"} }

// specKeys lists the spec grammar's keys in canonical output order
// (FormatSpec).
var specKeys = []string{
	"latency", "jitter", "rate",
	"reset", "reset_at", "reset_after",
	"truncate", "truncate_at", "truncate_after",
	"corrupt", "corrupt_at",
	"blackhole", "blackhole_at",
	"stall", "stall_at", "stall_ms", "stall_after",
}

// ParseSpec parses a network-fault specification. The grammar matches
// the -faults one: a preset name (see Preset), "@path" naming a file
// holding a spec, or a comma/whitespace-separated list of key=value
// pairs; files may carry '#' comments. Index lists use ':' between
// entries (commas split pairs):
//
//	latency=MS         fixed delay before the first response byte
//	jitter=MS          seeded extra delay in [0,jitter) per connection
//	rate=KBPS          response bandwidth cap
//	reset=P            probability of a mid-response TCP reset [0,1]
//	reset_at=I:J:K     exact connection indices reset
//	reset_after=BYTES  response bytes forwarded before the reset
//	truncate=P         probability of a clean mid-body close [0,1]
//	truncate_at=I:J    exact truncated connection indices
//	truncate_after=N   body bytes forwarded before the close
//	corrupt=P          probability of a flipped body byte [0,1]
//	corrupt_at=I:J     exact corrupted connection indices
//	blackhole=P        probability the response never comes [0,1]
//	blackhole_at=I:J   exact blackholed connection indices
//	stall=P            probability of a mid-body slow-loris stall [0,1]
//	stall_at=I:J       exact stalled connection indices
//	stall_ms=MS        stall length
//	stall_after=N      body bytes forwarded before the stall
//
// The empty spec is the zero (disabled) configuration.
func ParseSpec(spec string) (Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Config{}, nil
	}
	if c, ok := Preset(spec); ok {
		return c, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return Config{}, fmt.Errorf("netx: reading spec: %w", err)
		}
		return parsePairs(string(data))
	}
	return parsePairs(spec)
}

func parsePairs(text string) (Config, error) {
	var c Config
	var clean strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte(' ')
	}
	fields := strings.FieldsFunc(clean.String(), func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\r'
	})
	for _, kv := range fields {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("netx: bad spec entry %q (want key=value)", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if strings.HasSuffix(key, "_at") {
			at, err := parseIndexList(val)
			if err != nil {
				return Config{}, fmt.Errorf("netx: %s: %v", key, err)
			}
			switch key {
			case "reset_at":
				c.ResetAt = at
			case "truncate_at":
				c.TruncateAt = at
			case "corrupt_at":
				c.CorruptAt = at
			case "blackhole_at":
				c.BlackholeAt = at
			case "stall_at":
				c.StallAt = at
			default:
				return Config{}, unknownKey(key)
			}
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Config{}, fmt.Errorf("netx: %s: %v", key, err)
		}
		if !finite(f) {
			return Config{}, fmt.Errorf("netx: %s is not finite", key)
		}
		switch key {
		case "latency":
			c.LatencyMS = f
		case "jitter":
			c.JitterMS = f
		case "rate":
			c.RateKBps = f
		case "reset":
			c.ResetProb = f
		case "reset_after":
			c.ResetAfterBytes = int64(f)
		case "truncate":
			c.TruncateProb = f
		case "truncate_after":
			c.TruncateAfterBytes = int64(f)
		case "corrupt":
			c.CorruptProb = f
		case "blackhole":
			c.BlackholeProb = f
		case "stall":
			c.StallProb = f
		case "stall_ms":
			c.StallMS = f
		case "stall_after":
			c.StallAfterBytes = int64(f)
		default:
			return Config{}, unknownKey(key)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func unknownKey(key string) error {
	keys := append([]string(nil), specKeys...)
	sort.Strings(keys)
	return fmt.Errorf("netx: unknown spec key %q (have %v)", key, keys)
}

// parseIndexList parses a ':'-separated list of non-negative
// connection indices, returning them sorted and deduplicated.
func parseIndexList(val string) ([]int, error) {
	if strings.TrimSpace(val) == "" {
		return nil, fmt.Errorf("empty index list")
	}
	seen := map[int]bool{}
	var out []int
	for _, part := range strings.Split(val, ":") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("negative index %d", n)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// FormatSpec renders the configuration as a canonical spec string
// that ParseSpec round-trips. Zero-valued knobs are omitted; the zero
// configuration renders as "off".
func FormatSpec(c Config) string {
	vals := map[string]float64{
		"latency": c.LatencyMS, "jitter": c.JitterMS, "rate": c.RateKBps,
		"reset": c.ResetProb, "reset_after": float64(c.ResetAfterBytes),
		"truncate": c.TruncateProb, "truncate_after": float64(c.TruncateAfterBytes),
		"corrupt":   c.CorruptProb,
		"blackhole": c.BlackholeProb,
		"stall":     c.StallProb, "stall_ms": c.StallMS, "stall_after": float64(c.StallAfterBytes),
	}
	ats := map[string][]int{
		"reset_at": c.ResetAt, "truncate_at": c.TruncateAt,
		"corrupt_at": c.CorruptAt, "blackhole_at": c.BlackholeAt,
		"stall_at": c.StallAt,
	}
	var parts []string
	for _, k := range specKeys {
		if at, ok := ats[k]; ok {
			if len(at) > 0 {
				strs := make([]string, len(at))
				for i, n := range at {
					strs[i] = strconv.Itoa(n)
				}
				parts = append(parts, k+"="+strings.Join(strs, ":"))
			}
			continue
		}
		if v := vals[k]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", k, strconv.FormatFloat(v, 'g', -1, 64)))
		}
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}
