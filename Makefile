# Convenience targets for the sdpm reproduction.

GO ?= go

.PHONY: all check build test test-short vet race bench bench-json experiments examples cover clean

all: check

# check is the full gate: build, vet, tests, and the race detector
# over the concurrent packages (worker pool, instance memo,
# simulator).
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# race runs the race detector where concurrency lives: the worker
# pool, the memoizing instance cache, and the simulator packages the
# parallel experiment engine drives.
race:
	$(GO) test -race ./internal/runner ./internal/core ./internal/sim

# bench records the root experiment benchmarks (including the
# Sequential/Parallel suite pair) and the simulator hot-path
# allocation benchmarks into results/bench_baseline.txt for
# regression comparison (see docs/performance.md).
bench:
	mkdir -p results
	$(GO) test -bench=. -benchmem . ./internal/sim | tee results/bench_baseline.txt

# bench-json records the same benchmarks as machine-readable JSON
# (results/BENCH_sim.json) for dashboards and regression tooling; see
# tools/benchjson.
bench-json:
	mkdir -p results
	$(GO) test -bench=. -benchmem -run='^$$' . ./internal/sim | $(GO) run ./tools/benchjson > results/BENCH_sim.json

experiments:
	$(GO) run ./cmd/dpmexp -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure2
	$(GO) run ./examples/stencil
	$(GO) run ./examples/customdsl
	$(GO) run ./examples/sweep

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
