# Convenience targets for the sdpm reproduction.

GO ?= go

.PHONY: all build test test-short vet bench experiments examples cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/dpmexp -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure2
	$(GO) run ./examples/stencil
	$(GO) run ./examples/customdsl
	$(GO) run ./examples/sweep

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
