# Convenience targets for the sdpm reproduction.

GO ?= go

.PHONY: all check build test test-short vet race fuzz-smoke crash-smoke bench bench-json bench-diff experiments golden golden-drift examples cover cover-all serve-smoke soak-smoke govulncheck clean

all: check

# check is the full gate: build, vet, tests, and the race detector
# over the concurrent packages (worker pool, instance memo,
# simulator).
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# race runs the race detector where concurrency lives: the worker
# pool (including cancellation), the memoizing instance cache, the
# simulator, the fault-injection plan shared across workers, the
# journal appended to by concurrent experiment cells, the
# observability layer (collector snapshots and the event ring, both
# written by concurrent simulation runs), the fault-injecting
# filesystem (one op counter shared by concurrent handles), the
# atomic-write helpers (concurrent writers to one destination), and
# the serving layer (admission control, idempotency cache, and drain
# racing a burst of concurrent requests), plus the network-fault tier
# (the chaos proxy's connection pumps and the resilient client's
# hedged attempts).
race:
	$(GO) test -race ./internal/runner ./internal/core ./internal/sim ./internal/faults ./internal/fsx ./internal/cli ./internal/journal ./internal/obs ./internal/obs/events ./internal/serve ./internal/netx ./internal/client

# fuzz-smoke gives each fuzz target a short budget — enough to shake
# out parser and numeric regressions on every CI run without turning
# the pipeline into a fuzzing campaign. Go allows one -fuzz pattern
# per invocation, hence one line per target.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/dsl
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzBreakEven -fuzztime=$(FUZZTIME) ./internal/disk
	$(GO) test -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run='^$$' -fuzz=FuzzRecoverTail -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run='^$$' -fuzz=FuzzEventDecode -fuzztime=$(FUZZTIME) ./internal/obs/events
	$(GO) test -run='^$$' -fuzz=FuzzNetxSpec -fuzztime=$(FUZZTIME) ./internal/netx

# crash-smoke runs the crash-consistency suite: the fsx fault model
# itself, the crash explorer over every power-loss point of a journal
# kill-and-resume run and of an atomic file replace, and the serving
# layer's degraded-mode acceptance tests (journal faults must not fail
# requests). See docs/robustness.md "Crash consistency".
crash-smoke:
	$(GO) test -run 'TestCrash|TestFaulty|TestExplore|TestAppend|TestDegraded|TestDurable' -count=1 ./internal/fsx ./internal/journal ./internal/cli ./internal/serve

# bench records the root experiment benchmarks (including the
# Sequential/Parallel suite pair) and the simulator hot-path
# allocation benchmarks into results/bench_baseline.txt for
# regression comparison (see docs/performance.md).
bench:
	mkdir -p results
	$(GO) test -bench=. -benchmem . ./internal/sim | tee results/bench_baseline.txt

# bench-diff re-runs the simulator hot-path benchmarks and compares
# them against the committed baseline with tools/benchdiff, failing on
# a >25% ns/op regression — the CI bench-smoke gate. BENCH_SMOKE
# selects the three guarded hot paths; BENCH_TOLERANCE loosens the
# threshold for noisy machines.
BENCH_SMOKE ?= SimHotPath$$|SimHotPathDRPM$$|OpenLoopHotPath$$
BENCH_TOLERANCE ?= 25
bench-diff:
	$(GO) test -run='^$$' -bench='$(BENCH_SMOKE)' -benchmem ./internal/sim | \
		$(GO) run ./tools/benchdiff -tolerance $(BENCH_TOLERANCE) -bench '$(BENCH_SMOKE)' results/bench_baseline.txt -

# bench-json records the same benchmarks as machine-readable JSON
# (results/BENCH_sim.json) for dashboards and regression tooling; see
# tools/benchjson.
bench-json:
	mkdir -p results
	$(GO) test -bench=. -benchmem -run='^$$' . ./internal/sim | $(GO) run ./tools/benchjson > results/BENCH_sim.json

experiments:
	$(GO) run ./cmd/dpmexp -run all

# golden regenerates the checked-in experiment output, with the
# conservation audit verifying every simulation along the way.
# golden-drift fails if the regenerated output differs from the
# committed file — the CI guard against silent behavior changes.
golden:
	mkdir -p results
	$(GO) run ./cmd/dpmexp -run all -audit > results/experiments.txt

golden-drift: golden
	git diff --exit-code results/experiments.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/figure2
	$(GO) run ./examples/stencil
	$(GO) run ./examples/customdsl
	$(GO) run ./examples/sweep

# cover writes a coverage profile for the observability layer and
# enforces a floor on its aggregate statement coverage — the event
# log and exporters are pure data plumbing, so near-total coverage is
# cheap and regressions there mean untested rendering paths.
OBS_COVER_MIN ?= 85
cover:
	mkdir -p results
	$(GO) test -coverprofile=results/cover_obs.out ./internal/obs/...
	@$(GO) tool cover -func=results/cover_obs.out | tail -1
	@total=$$($(GO) tool cover -func=results/cover_obs.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v min="$(OBS_COVER_MIN)" 'BEGIN { if (t+0 < min+0) { printf "coverage %.1f%% below the %s%% floor for internal/obs/...\n", t, min; exit 1 } }'

# cover-all is the informal whole-repo view (no threshold).
cover-all:
	$(GO) test -cover ./...

# serve-smoke is the end-to-end gate for the dpmd daemon: boot the
# real binary with chaos stalls armed, drive a deadline-exceeding
# request and an overload burst over HTTP, SIGTERM it, and assert a
# clean exit 0 with a finalized journal (see tools/servesmoke).
serve-smoke:
	mkdir -p results
	$(GO) build -o results/dpmd ./cmd/dpmd
	$(GO) run ./tools/servesmoke -bin results/dpmd

# soak-smoke is the network-fault soak gate: boot the real dpmd, put
# the seeded chaos proxy (internal/netx) between it and the resilient
# client (internal/client), and prove integrity, determinism, breaker
# choreography, and hedging end to end (see tools/soaksmoke).
soak-smoke:
	mkdir -p results
	$(GO) build -o results/dpmd ./cmd/dpmd
	$(GO) run ./tools/soaksmoke -bin results/dpmd

# govulncheck scans the module against the Go vulnerability database.
# The scanner is not vendored; the target uses an installed binary
# when present and degrades to a skip (not a failure) when offline —
# CI installs it explicitly.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it via golang.org/x/vuln)"; \
	fi

clean:
	$(GO) clean ./...
